module FA = Float.Array

type problem = {
  ncols : int;
  rows : (int * float) array array;
  senses : Model.sense array;
  rhs : float array;
  obj : float array;
  obj_const : float;
}

type warm_kind = Cold | Warm | Warm_fallback

type pricing = Dantzig | Devex

type result = {
  status : Status.lp_status;
  objective : float;
  primal : float array;
  iterations : int;
  basis : Basis.t option;
  warm : warm_kind;
}

let of_model m =
  let n = Model.nvars m in
  let dir, obj_expr = Model.objective m in
  let sign = match dir with Model.Minimize -> 1.0 | Model.Maximize -> -1.0 in
  let obj = Array.make n 0. in
  Lin.iter (fun v c -> if v < n then obj.(v) <- sign *. c) obj_expr;
  let cons = Model.constrs m in
  let rows =
    Array.map
      (fun (c : Model.constr) -> Array.of_list (Lin.terms c.Model.c_expr))
      cons
  in
  let senses = Array.map (fun (c : Model.constr) -> c.Model.c_sense) cons in
  let rhs = Array.map (fun (c : Model.constr) -> c.Model.c_rhs) cons in
  { ncols = n; rows; senses; rhs; obj; obj_const = sign *. Lin.constant obj_expr }

(* Nonbasic variable status.  Basic variables are tracked via [basis].
   Shared with {!Basis} so snapshots can be restored without
   translation. *)
type vstat = Basis.vstat = Basic | At_lower | At_upper | Free_zero

(* The basis representation behind FTRAN/BTRAN.  The sparse LU kernel is
   the default; the dense explicit inverse survives as an ablation
   baseline ([?dense] on {!solve}) so the bench can report the kernel
   speedup honestly. *)
type kernel =
  | Dense of float array array  (* explicit inverse, m x m *)
  | Sparse of Lu.t

(* ------------------------------------------------------------------ *)
(* Per-worker workspace (arena)                                        *)
(* ------------------------------------------------------------------ *)

(* Everything a solve needs beyond the problem snapshot itself: the
   compressed-sparse-column image of the constraint matrix (structural
   columns, then unit slack columns, then unit artificial columns) and
   every working array of the solver state.  A workspace is owned by one
   caller at a time — branch & bound keeps one per worker domain and
   threads it through thousands of node re-solves, which removes the
   per-solve array allocations that used to dominate minor-GC pressure.
   The CSC image is cached on the physical identity of [p.rows]: node
   re-solves of the same problem reuse it untouched (only the artificial
   signs, which depend on the starting residual, are rewritten in
   place), and a cut-grown problem misses the cache and rebuilds.

   Working arrays ([a_*]) are exact-sized (reallocated only when the
   problem shape changes) so snapshots and tableau copies need no
   slicing.  The CSC image itself ([coli]/[colv], plus the count/fill
   scratch) grows monotonically and is reused across rebuilds: every
   read goes through [colp] offsets, so spare capacity past the live
   nonzeros is never observed.  With the presolve reduction shrinking
   and cuts regrowing the row set every few nodes, this turns the
   rebuild from three fresh allocations per cache miss into in-place
   refills once high-water capacity is reached. *)
type workspace = {
  mutable c_rows : (int * float) array array;  (* CSC cache key *)
  mutable c_n : int;
  mutable c_m : int;
  mutable colp : int array;  (* column start offsets, length >= ntot+1 *)
  mutable coli : int array;  (* row indices *)
  mutable colv : floatarray;  (* values, parallel to [coli] *)
  mutable c_scratch : int array;  (* counts/fill cursors for rebuilds *)
  mutable a_lb : float array;  (* working bounds, length ntot *)
  mutable a_ub : float array;
  mutable a_cost : float array;
  mutable a_stat : vstat array;
  mutable a_basis : int array;  (* length m *)
  mutable a_xb : float array;
  mutable a_wy : float array;
  mutable a_ww : float array;
  mutable a_wrho : float array;
  mutable a_wres : float array;
  mutable a_dred : float array;  (* maintained reduced costs (devex) *)
  mutable a_dw : float array;  (* devex reference weights *)
  mutable a_wflip : float array;  (* bound-flip residual accumulator *)
  mutable a_cnd : int array;  (* dual ratio-test candidates *)
  mutable a_cnda : float array;
  mutable a_cndr : float array;
}

let create_workspace () =
  {
    c_rows = [||]; c_n = -1; c_m = -1;
    colp = [| 0 |]; coli = [||]; colv = FA.create 0; c_scratch = [||];
    a_lb = [||]; a_ub = [||]; a_cost = [||]; a_stat = [||];
    a_basis = [||]; a_xb = [||]; a_wy = [||]; a_ww = [||];
    a_wrho = [||]; a_wres = [||]; a_dred = [||]; a_dw = [||];
    a_wflip = [||]; a_cnd = [||]; a_cnda = [||]; a_cndr = [||];
  }

let ensure_f a n = if Array.length a = n then a else Array.make n 0.
let ensure_i a n = if Array.length a = n then a else Array.make n 0
let ensure_s a n = if Array.length a = n then a else Array.make n At_lower

(* Build (or reuse) the CSC image of the full column set.  Structural
   entries appear in the same row-major order the old per-column tuple
   arrays held, so dot products against them are arithmetically
   identical to the PR5 kernel. *)
let build_csc ws p m =
  let n = p.ncols in
  let ntot = n + (2 * m) in
  if ws.c_rows == p.rows && ws.c_n = n && ws.c_m = m then ()
  else begin
    (* Grow-only storage: reuse the previous arrays whenever capacity
       allows; readers never look past the [colp] offsets. *)
    if Array.length ws.c_scratch < ntot then ws.c_scratch <- Array.make ntot 0
    else Array.fill ws.c_scratch 0 ntot 0;
    let counts = ws.c_scratch in
    Array.iter
      (fun row -> Array.iter (fun (j, _) -> counts.(j) <- counts.(j) + 1) row)
      p.rows;
    for i = 0 to m - 1 do
      counts.(n + i) <- 1;
      counts.(n + m + i) <- 1
    done;
    if Array.length ws.colp < ntot + 1 then ws.colp <- Array.make (ntot + 1) 0;
    let colp = ws.colp in
    colp.(0) <- 0;
    for j = 0 to ntot - 1 do
      colp.(j + 1) <- colp.(j) + counts.(j)
    done;
    let nnz = colp.(ntot) in
    if Array.length ws.coli < nnz then ws.coli <- Array.make nnz 0;
    if FA.length ws.colv < nnz then ws.colv <- FA.create nnz;
    let coli = ws.coli and colv = ws.colv in
    (* [counts] is consumed; reuse its prefix as per-column fill cursors. *)
    Array.fill counts 0 n 0;
    let fill = counts in
    Array.iteri
      (fun i row ->
        Array.iter
          (fun (j, a) ->
            let k = colp.(j) + fill.(j) in
            coli.(k) <- i;
            FA.set colv k a;
            fill.(j) <- fill.(j) + 1)
          row)
      p.rows;
    for i = 0 to m - 1 do
      coli.(colp.(n + i)) <- i;
      FA.set colv colp.(n + i) 1.0;
      coli.(colp.(n + m + i)) <- i;
      FA.set colv colp.(n + m + i) 1.0
    done;
    ws.c_rows <- p.rows;
    ws.c_n <- n;
    ws.c_m <- m
  end

type state = {
  p : problem;
  m : int;  (* rows *)
  ntot : int;  (* structural + slack + artificial columns *)
  colp : int array;  (* CSC columns, see {!workspace} *)
  coli : int array;
  colv : floatarray;
  lb : float array;  (* working bounds, length ntot *)
  ub : float array;
  stat : vstat array;
  basis : int array;  (* column basic in each row *)
  dense : bool;  (* which kernel [refactorize] rebuilds *)
  pricing : pricing;
  harris : bool;
  mutable kern : kernel;
  xb : float array;  (* values of basic variables per row *)
  cost : float array;  (* current-phase cost, length ntot *)
  (* Scratch vectors from the workspace, reused by every iteration
     (pricing, ratio test, dual repair, tableau rows) and across node
     re-solves. *)
  wy : float array;  (* dual prices, row-indexed *)
  ww : float array;  (* entering column FTRAN image, position-indexed *)
  wrho : float array;  (* row of B^-1 (dual pricing / tableau rows) *)
  wres : float array;  (* RHS residual under the nonbasic assignment *)
  dred : float array;  (* maintained reduced costs (devex pricing) *)
  dw : float array;  (* devex reference-framework weights *)
  wflip : float array;  (* combined bound-flip column, row-indexed *)
  cnd : int array;  (* dual-loop candidate columns *)
  cnd_a : float array;  (* their pivot-row coefficients *)
  cnd_r : float array;  (* their dual ratios *)
  mutable d_valid : bool;  (* [dred] tracks the current basis *)
  mutable niter : int;
  mutable degen_count : int;
  mutable bland : bool;
  mutable price_ptr : int;  (* partial-pricing scan cursor *)
  mutable age : int;  (* eta/pivot updates since last factorization *)
}

let pivot_tol = 1e-9

(* Harris ratio test: bounds are relaxed by this much in the first pass;
   the second pass picks the largest pivot among the candidates the
   relaxation admits.  Matches the primal feasibility tolerance. *)
let harris_tol = 1e-7

(* Refactorize once the eta file (or dense update chain) is this long:
   each product-form eta both slows the solves down and compounds
   rounding, so the budget bounds drift across warm-start generations
   exactly like the old dense [refresh_age] did. *)
let eta_limit = 64

let nb_value st j =
  match st.stat.(j) with
  | At_lower -> st.lb.(j)
  | At_upper -> st.ub.(j)
  | Free_zero -> 0.
  | Basic -> invalid_arg "nb_value: basic"

(* Materialize one CSC column as a tuple array — only for the (rare)
   factorization callbacks; the per-iteration loops read the CSC buffers
   directly. *)
let col_array st j =
  let s = st.colp.(j) and e = st.colp.(j + 1) in
  Array.init (e - s) (fun k -> (st.coli.(s + k), FA.get st.colv (s + k)))

(* ------------------------------------------------------------------ *)
(* Kernel operations                                                   *)
(* ------------------------------------------------------------------ *)

(* y = c_B^T B^{-1}, into [st.wy] (row-indexed). *)
let compute_duals st =
  match st.kern with
  | Dense binv ->
      Array.fill st.wy 0 st.m 0.;
      for i = 0 to st.m - 1 do
        let cb = st.cost.(st.basis.(i)) in
        if cb <> 0. then begin
          let row = binv.(i) in
          for k = 0 to st.m - 1 do
            st.wy.(k) <- st.wy.(k) +. (cb *. row.(k))
          done
        end
      done
  | Sparse lu ->
      for i = 0 to st.m - 1 do
        st.wy.(i) <- st.cost.(st.basis.(i))
      done;
      Lu.btran lu st.wy

(* w = B^{-1} A_j, into [st.ww] (position-indexed). *)
let ftran_col st j =
  Array.fill st.ww 0 st.m 0.;
  (match st.kern with
  | Dense binv ->
      for k = st.colp.(j) to st.colp.(j + 1) - 1 do
        let a = FA.get st.colv k in
        if a <> 0. then begin
          let r = st.coli.(k) in
          for i = 0 to st.m - 1 do
            st.ww.(i) <- st.ww.(i) +. (binv.(i).(r) *. a)
          done
        end
      done
  | Sparse lu ->
      for k = st.colp.(j) to st.colp.(j + 1) - 1 do
        let r = st.coli.(k) in
        st.ww.(r) <- st.ww.(r) +. FA.get st.colv k
      done;
      Lu.ftran lu st.ww)

(* rho = e_r^T B^{-1} (row [r] of the inverse), into [st.wrho]
   (row-indexed). *)
let binv_row st r =
  match st.kern with
  | Dense binv -> Array.blit binv.(r) 0 st.wrho 0 st.m
  | Sparse lu ->
      Array.fill st.wrho 0 st.m 0.;
      st.wrho.(r) <- 1.0;
      Lu.btran lu st.wrho

let reduced_cost st y j =
  let d = ref st.cost.(j) in
  for k = st.colp.(j) to st.colp.(j + 1) - 1 do
    d := !d -. (y.(Array.unsafe_get st.coli k) *. FA.unsafe_get st.colv k)
  done;
  !d

(* rho-dot: alpha_rj = rho^T A_j for a row vector [rho] of B^{-1}. *)
let rho_dot st rho j =
  let a = ref 0. in
  for k = st.colp.(j) to st.colp.(j + 1) - 1 do
    a := !a +. (rho.(Array.unsafe_get st.coli k) *. FA.unsafe_get st.colv k)
  done;
  !a

(* xb = B^{-1} (b - N x_N) under the current kernel and bounds. *)
let recompute_xb st =
  let resid = st.wres in
  Array.blit st.p.rhs 0 resid 0 st.m;
  for j = 0 to st.ntot - 1 do
    if st.stat.(j) <> Basic then begin
      let v = nb_value st j in
      if v <> 0. then
        for k = st.colp.(j) to st.colp.(j + 1) - 1 do
          let i = st.coli.(k) in
          resid.(i) <- resid.(i) -. (FA.get st.colv k *. v)
        done
    end
  done;
  match st.kern with
  | Dense binv ->
      for i = 0 to st.m - 1 do
        let acc = ref 0. in
        let row = binv.(i) in
        for k = 0 to st.m - 1 do
          acc := !acc +. (row.(k) *. resid.(k))
        done;
        st.xb.(i) <- !acc
      done
  | Sparse lu ->
      Array.blit resid 0 st.xb 0 st.m;
      Lu.ftran lu st.xb

(* Rebuild the factorization (and xb) from scratch — numerical hygiene.
   Returns false, leaving the state untouched, when the basis matrix is
   singular or fails its conditioning probe. *)
let refactorize st =
  let m = st.m in
  if not st.dense then begin
    match Lu.factorize ~m (fun i -> col_array st st.basis.(i)) with
    | Some lu ->
        st.kern <- Sparse lu;
        st.age <- 0;
        recompute_xb st;
        true
    | None -> false
  end
  else begin
    (* Assemble the basis matrix and invert via Gauss-Jordan with
       partial pivoting. *)
    let a = Array.init m (fun _ -> Array.make m 0.) in
    let inv = Array.init m (fun i -> Array.init m (fun k -> if i = k then 1.0 else 0.)) in
    for i = 0 to m - 1 do
      (* Accumulate rather than assign: ftran/btran sum duplicate entries
         within a sparse column, and the factorization must invert the
         same matrix they apply. *)
      let j = st.basis.(i) in
      for k = st.colp.(j) to st.colp.(j + 1) - 1 do
        a.(st.coli.(k)).(i) <- a.(st.coli.(k)).(i) +. FA.get st.colv k
      done
    done;
    let ok = ref true in
    for col = 0 to m - 1 do
      if !ok then begin
        let piv = ref col in
        for i = col + 1 to m - 1 do
          if Float.abs a.(i).(col) > Float.abs a.(!piv).(col) then piv := i
        done;
        if Float.abs a.(!piv).(col) < 1e-12 then ok := false
        else begin
          if !piv <> col then begin
            let tmp = a.(col) in
            a.(col) <- a.(!piv);
            a.(!piv) <- tmp;
            let tmp = inv.(col) in
            inv.(col) <- inv.(!piv);
            inv.(!piv) <- tmp
          end;
          let d = a.(col).(col) in
          for k = 0 to m - 1 do
            a.(col).(k) <- a.(col).(k) /. d;
            inv.(col).(k) <- inv.(col).(k) /. d
          done;
          for i = 0 to m - 1 do
            if i <> col then begin
              let f = a.(i).(col) in
              if f <> 0. then
                for k = 0 to m - 1 do
                  a.(i).(k) <- a.(i).(k) -. (f *. a.(col).(k));
                  inv.(i).(k) <- inv.(i).(k) -. (f *. inv.(col).(k))
                done
            end
          done
        end
      end
    done;
    (* Gauss-Jordan "succeeds" on a near-singular basis (every pivot
       clears 1e-12) yet the computed inverse can be off by O(cond·eps) —
       whole units at condition 1e14 — which silently corrupts [xb] and
       the objective.  Probe the product on the all-ones vector and
       reject ill-conditioned bases so callers fall back to a cold solve
       that picks a different basis path. *)
    if !ok then begin
      let y = Array.make m 0. in
      for i = 0 to m - 1 do
        let acc = ref 0. in
        let row = inv.(i) in
        for k = 0 to m - 1 do
          acc := !acc +. row.(k)
        done;
        y.(i) <- !acc
      done;
      let z = Array.make m 0. in
      for i = 0 to m - 1 do
        if y.(i) <> 0. then begin
          let j = st.basis.(i) in
          for k = st.colp.(j) to st.colp.(j + 1) - 1 do
            z.(st.coli.(k)) <- z.(st.coli.(k)) +. (FA.get st.colv k *. y.(i))
          done
        end
      done;
      let err = ref 0. in
      let ymax = ref 1. in
      for i = 0 to m - 1 do
        err := Float.max !err (Float.abs (z.(i) -. 1.));
        ymax := Float.max !ymax (Float.abs y.(i))
      done;
      if !err > 1e-8 *. !ymax then ok := false
    end;
    if !ok then begin
      st.kern <- Dense inv;
      st.age <- 0;
      recompute_xb st
    end;
    !ok
  end

(* Basis change at position [r]: the entering column's FTRAN image [w]
   defines either one elementary row transform of the dense inverse or
   one product-form eta appended to the LU kernel.  A shaky eta (pivot
   tiny relative to the column) or a full eta file triggers an immediate
   refactorization. *)
let kernel_update st r w =
  match st.kern with
  | Dense binv ->
      let wr = w.(r) in
      let brow = binv.(r) in
      for k = 0 to st.m - 1 do
        brow.(k) <- brow.(k) /. wr
      done;
      for i = 0 to st.m - 1 do
        if i <> r then begin
          let f = w.(i) in
          if Float.abs f > 0. then begin
            let row = binv.(i) in
            for k = 0 to st.m - 1 do
              row.(k) <- row.(k) -. (f *. brow.(k))
            done
          end
        end
      done;
      st.age <- st.age + 1
  | Sparse lu ->
      let stable = Lu.update lu ~r ~w in
      st.age <- st.age + 1;
      if (not stable) || Lu.neta lu >= eta_limit then ignore (refactorize st)

(* ------------------------------------------------------------------ *)
(* Pricing                                                             *)
(* ------------------------------------------------------------------ *)

let price_score st d j =
  match st.stat.(j) with
  | At_lower -> -.d
  | At_upper -> d
  | Free_zero -> Float.abs d
  | Basic -> 0.

(* Select the entering column, or None at (phase-)optimality.

   Dantzig mode: partial (candidate-list) pricing — scan a block of
   columns starting at the cursor, return the best candidate of the
   first block that has one, and resume the next iteration where this
   one left off.  An iteration therefore prices O(block) columns
   instead of all of them; only a (phase-)optimal iteration pays for the
   full wrap that proves no candidate exists.  Under Bland's rule the
   scan is the classic full lowest-index pass, preserving the
   termination guarantee. *)
let price st ~dual_tol =
  compute_duals st;
  let y = st.wy in
  if st.bland then begin
    let best = ref None in
    let j = ref 0 in
    while !best = None && !j < st.ntot do
      let jj = !j in
      if st.stat.(jj) <> Basic && st.lb.(jj) < st.ub.(jj) then begin
        let d = reduced_cost st y jj in
        if price_score st d jj > dual_tol then best := Some (jj, d)
      end;
      incr j
    done;
    !best
  end
  else begin
    let ntot = st.ntot in
    let block =
      let b = if ntot / 16 > 128 then ntot / 16 else 128 in
      if b >= ntot then ntot else b
    in
    let best = ref None and best_score = ref dual_tol in
    let scanned = ref 0 in
    let ptr = ref st.price_ptr in
    while !best = None && !scanned < ntot do
      let upto = if block < ntot - !scanned then block else ntot - !scanned in
      for t = 0 to upto - 1 do
        let j =
          let j = !ptr + t in
          if j >= ntot then j - ntot else j
        in
        if st.stat.(j) <> Basic && st.lb.(j) < st.ub.(j) then begin
          let d = reduced_cost st y j in
          let score = price_score st d j in
          if score > !best_score then begin
            best := Some (j, d);
            best_score := score
          end
        end
      done;
      ptr := (let p = !ptr + upto in if p >= ntot then p - ntot else p);
      scanned := !scanned + upto
    done;
    st.price_ptr <- !ptr;
    !best
  end

(* Devex reference-framework pricing (Harris '73 weights): pick the
   entering column maximizing d_j^2 / gamma_j, where gamma_j
   approximates the steepest-edge norm ||B^{-1} A_j||^2 relative to the
   reference framework (the nonbasic set at the last reset, where all
   gamma = 1).  Reduced costs are maintained incrementally from the
   pivot row — see {!devex_update} — so a pricing pass is a flat scan of
   two unboxed arrays, with a full refresh (one BTRAN + column sweep)
   only at phase entry, periodically for drift control, and to confirm
   optimality before it is declared. *)
let refresh_dred st =
  compute_duals st;
  let y = st.wy in
  for j = 0 to st.ntot - 1 do
    st.dred.(j) <- (if st.stat.(j) = Basic then 0. else reduced_cost st y j)
  done;
  st.d_valid <- true

let reset_devex st = Array.fill st.dw 0 st.ntot 1.0

let devex_price st ~dual_tol =
  let best = ref (-1) and best_score = ref 0. and best_d = ref 0. in
  for j = 0 to st.ntot - 1 do
    if st.stat.(j) <> Basic && st.lb.(j) < st.ub.(j) then begin
      let d = st.dred.(j) in
      if price_score st d j > dual_tol then begin
        let s = d *. d /. st.dw.(j) in
        if s > !best_score then begin
          best := j;
          best_score := s;
          best_d := d
        end
      end
    end
  done;
  if !best < 0 then None else Some (!best, !best_d)

(* Post-ratio-test devex bookkeeping, called {e before} the basis
   changes: with entering column [q] pivoting at row [r] (pivot element
   [alpha_rq] = its FTRAN image at [r]), one BTRAN gives the pivot row
   rho, and one sweep over the nonbasic columns updates both the
   maintained reduced costs (d_j -= theta * alpha_rj) and the devex
   weights (gamma_j = max(gamma_j, alpha_rj^2 * gamma_q / alpha_rq^2)).
   The leaving variable enters the nonbasic set with the transformed
   weight of the entering one.  Weights that outgrow 1e8 trigger a
   reference reset (all gamma back to 1). *)
let devex_update st ~q ~r ~alpha_rq =
  binv_row st r;
  let rho = st.wrho in
  let leaving = st.basis.(r) in
  let theta = st.dred.(q) /. alpha_rq in
  let gq = st.dw.(q) /. (alpha_rq *. alpha_rq) in
  let wmax = ref 1.0 in
  for j = 0 to st.ntot - 1 do
    if j <> q && st.stat.(j) <> Basic then begin
      let arj = rho_dot st rho j in
      if arj <> 0. then begin
        st.dred.(j) <- st.dred.(j) -. (theta *. arj);
        let cand = arj *. arj *. gq in
        if cand > st.dw.(j) then st.dw.(j) <- cand;
        if st.dw.(j) > !wmax then wmax := st.dw.(j)
      end
    end
  done;
  st.dred.(q) <- 0.;
  st.dred.(leaving) <- -.theta;
  st.dw.(leaving) <- Float.max gq 1.0;
  st.dw.(q) <- 1.0;
  if !wmax > 1e8 then reset_devex st

type ratio_outcome =
  | Unbounded
  | Bound_flip of float
  | Leave of { row : int; t : float; to_upper : bool }

(* Classic textbook ratio test: smallest ratio wins, ties broken by the
   larger pivot (or the lower index under Bland's rule). *)
let ratio_test_classic st j sigma w =
  let span = st.ub.(j) -. st.lb.(j) in
  let best_t = ref (if Float.is_finite span then span else infinity) in
  let leave = ref None in
  for i = 0 to st.m - 1 do
    let wi = w.(i) in
    if Float.abs wi > pivot_tol then begin
      let k = st.basis.(i) in
      let dx = -.sigma *. wi in
      let t, to_upper =
        if dx > 0. then
          (if Float.is_finite st.ub.(k) then (st.ub.(k) -. st.xb.(i)) /. dx else infinity), true
        else (if Float.is_finite st.lb.(k) then (st.lb.(k) -. st.xb.(i)) /. dx else infinity), false
      in
      let t = Float.max t 0. in
      let better =
        t < !best_t -. 1e-12
        || (t <= !best_t +. 1e-12
            &&
            match !leave with
            | None -> true
            | Some (r, _) ->
                if st.bland then st.basis.(i) < st.basis.(r)
                else Float.abs wi > Float.abs w.(r))
      in
      if better then begin
        best_t := Float.min t !best_t;
        leave := Some (i, to_upper)
      end
    end
  done;
  match !leave with
  | None -> if Float.is_finite !best_t then Bound_flip !best_t else Unbounded
  | Some (r, to_upper) ->
      if Float.is_finite span && span <= !best_t then Bound_flip span
      else if Float.is_finite !best_t then Leave { row = r; t = !best_t; to_upper }
      else Unbounded

(* Harris two-pass ratio test: pass 1 finds the smallest ratio with the
   blocking bounds relaxed by [harris_tol]; pass 2 picks, among the rows
   whose relaxed ratio fits under that minimum, the one with the largest
   pivot magnitude.  The step taken is the chosen row's true
   (unrelaxed) ratio clamped at zero — a slightly-negative true ratio is
   a degenerate step executed on a large, numerically safe pivot, which
   is exactly the point of the test. *)
let ratio_test_harris st j sigma w =
  let span = st.ub.(j) -. st.lb.(j) in
  let tmax = ref (if Float.is_finite span then span +. harris_tol else infinity) in
  for i = 0 to st.m - 1 do
    let wi = w.(i) in
    if Float.abs wi > pivot_tol then begin
      let k = st.basis.(i) in
      let dx = -.sigma *. wi in
      let t =
        if dx > 0. then
          if Float.is_finite st.ub.(k) then (st.ub.(k) +. harris_tol -. st.xb.(i)) /. dx
          else infinity
        else if Float.is_finite st.lb.(k) then
          (st.lb.(k) -. harris_tol -. st.xb.(i)) /. dx
        else infinity
      in
      let t = Float.max t 0. in
      if t < !tmax then tmax := t
    end
  done;
  if not (Float.is_finite !tmax) then
    if Float.is_finite span then Bound_flip span else Unbounded
  else begin
    let best = ref (-1) and best_a = ref 0. and best_t = ref 0. and best_up = ref false in
    for i = 0 to st.m - 1 do
      let wi = w.(i) in
      if Float.abs wi > pivot_tol && Float.abs wi > !best_a then begin
        let k = st.basis.(i) in
        let dx = -.sigma *. wi in
        let t_rel, t_true, up =
          if dx > 0. then
            if Float.is_finite st.ub.(k) then
              ( (st.ub.(k) +. harris_tol -. st.xb.(i)) /. dx,
                (st.ub.(k) -. st.xb.(i)) /. dx,
                true )
            else (infinity, infinity, true)
          else if Float.is_finite st.lb.(k) then
            ( (st.lb.(k) -. harris_tol -. st.xb.(i)) /. dx,
              (st.lb.(k) -. st.xb.(i)) /. dx,
              false )
          else (infinity, infinity, false)
        in
        if t_rel <= !tmax then begin
          best := i;
          best_a := Float.abs wi;
          best_t := Float.max t_true 0.;
          best_up := up
        end
      end
    done;
    if !best < 0 then if Float.is_finite span then Bound_flip span else Unbounded
    else if Float.is_finite span && span <= !best_t then Bound_flip span
    else Leave { row = !best; t = !best_t; to_upper = !best_up }
  end

let ratio_test st j sigma w =
  if st.harris && not st.bland then ratio_test_harris st j sigma w
  else ratio_test_classic st j sigma w

let apply_step st j sigma w t =
  if t <> 0. then
    for i = 0 to st.m - 1 do
      st.xb.(i) <- st.xb.(i) -. (sigma *. w.(i) *. t)
    done;
  ignore j

let pivot st j sigma w r t ~to_upper =
  let enter_val = nb_value st j +. (sigma *. t) in
  let leaving = st.basis.(r) in
  st.stat.(leaving) <- (if to_upper then At_upper else At_lower);
  (* Snap the leaving variable exactly onto its bound. *)
  st.basis.(r) <- j;
  st.stat.(j) <- Basic;
  st.xb.(r) <- enter_val;
  kernel_update st r w

let current_objective st =
  let total = ref 0. in
  for j = 0 to st.ntot - 1 do
    if st.stat.(j) <> Basic && st.cost.(j) <> 0. then
      total := !total +. (st.cost.(j) *. nb_value st j)
  done;
  for i = 0 to st.m - 1 do
    let c = st.cost.(st.basis.(i)) in
    if c <> 0. then total := !total +. (c *. st.xb.(i))
  done;
  !total

(* Snapshot the basis header plus (when obtainable) a sparse factor of
   the basis matrix — never a dense inverse, so node records cost
   O(nonzeros) instead of O(m²).  In dense-ablation mode the factor is
   computed fresh here; a failure just yields a header-only snapshot
   that restores via refactorization. *)
let snapshot st =
  let factor =
    match st.kern with
    | Sparse lu -> Some (Lu.snapshot lu)
    | Dense _ -> (
        match Lu.factorize ~m:st.m (fun i -> col_array st st.basis.(i)) with
        | Some lu -> Some (Lu.snapshot lu)
        | None -> None)
  in
  Basis.make ~ncols:st.p.ncols ~nrows:st.m ~basis:st.basis ~stat:st.stat ~factor

(* How stale a snapshot's factor may be — in appended etas — before a
   restore pays for a fresh factorization.  Comparable to [eta_limit],
   so warm-started chains see no worse drift than a long cold solve. *)
let refresh_age = eta_limit

let init_state ~dense ~pricing ~harris ~ws p ~lb:wlb ~ub:wub =
  let m = Array.length p.rows in
  let n = p.ncols in
  let ntot = n + (2 * m) in
  build_csc ws p m;
  let colp = ws.colp and coli = ws.coli and colv = ws.colv in
  ws.a_lb <- ensure_f ws.a_lb ntot;
  ws.a_ub <- ensure_f ws.a_ub ntot;
  ws.a_cost <- ensure_f ws.a_cost ntot;
  ws.a_stat <- ensure_s ws.a_stat ntot;
  ws.a_basis <- ensure_i ws.a_basis m;
  ws.a_xb <- ensure_f ws.a_xb m;
  ws.a_wy <- ensure_f ws.a_wy m;
  ws.a_ww <- ensure_f ws.a_ww m;
  ws.a_wrho <- ensure_f ws.a_wrho m;
  ws.a_wres <- ensure_f ws.a_wres m;
  ws.a_dred <- ensure_f ws.a_dred ntot;
  ws.a_dw <- ensure_f ws.a_dw ntot;
  ws.a_wflip <- ensure_f ws.a_wflip m;
  ws.a_cnd <- ensure_i ws.a_cnd ntot;
  ws.a_cnda <- ensure_f ws.a_cnda ntot;
  ws.a_cndr <- ensure_f ws.a_cndr ntot;
  let lb = ws.a_lb and ub = ws.a_ub in
  Array.blit wlb 0 lb 0 n;
  Array.blit wub 0 ub 0 n;
  (* Slack bounds encode the row sense: a.x + s = b. *)
  for i = 0 to m - 1 do
    let s = n + i in
    match p.senses.(i) with
    | Model.Le ->
        lb.(s) <- 0.;
        ub.(s) <- infinity
    | Model.Ge ->
        lb.(s) <- neg_infinity;
        ub.(s) <- 0.
    | Model.Eq ->
        lb.(s) <- 0.;
        ub.(s) <- 0.
  done;
  let stat = ws.a_stat in
  for j = 0 to n - 1 do
    stat.(j) <-
      (if Float.is_finite lb.(j) then At_lower
       else if Float.is_finite ub.(j) then At_upper
       else Free_zero)
  done;
  (* Row residuals under the nonbasic assignment. *)
  let resid = ws.a_wres in
  Array.blit p.rhs 0 resid 0 m;
  for j = 0 to n - 1 do
    let v =
      match stat.(j) with
      | At_lower -> lb.(j)
      | At_upper -> ub.(j)
      | Free_zero | Basic -> 0.
    in
    if v <> 0. then
      for k = colp.(j) to colp.(j + 1) - 1 do
        resid.(coli.(k)) <- resid.(coli.(k)) -. (FA.get colv k *. v)
      done
  done;
  let basis = ws.a_basis in
  let diag = Array.make m 1.0 in
  let xb = ws.a_xb in
  let cost = ws.a_cost in
  Array.fill cost 0 ntot 0.;
  for i = 0 to m - 1 do
    let s = n + i and art = n + m + i in
    let r = resid.(i) in
    if r >= lb.(s) -. 1e-12 && r <= ub.(s) +. 1e-12 then begin
      (* Slack basic at the residual value; artificial unused. *)
      basis.(i) <- s;
      stat.(s) <- Basic;
      xb.(i) <- r;
      FA.set colv colp.(art) 1.0;
      stat.(art) <- At_lower;
      lb.(art) <- 0.;
      ub.(art) <- 0.
    end
    else begin
      (* Slack pinned at its nearest bound (0 in all senses); an
         artificial with sign g carries the residual: x_art = |r| >= 0. *)
      let g = if r >= 0. then 1.0 else -1.0 in
      FA.set colv colp.(art) g;
      stat.(s) <- At_lower;
      (match p.senses.(i) with
      | Model.Ge -> stat.(s) <- At_upper
      | Model.Le | Model.Eq -> ());
      basis.(i) <- art;
      stat.(art) <- Basic;
      lb.(art) <- 0.;
      ub.(art) <- infinity;
      xb.(i) <- Float.abs r;
      diag.(i) <- g;
      cost.(art) <- 1.0 (* phase-1 cost *)
    end
  done;
  let st =
    { p; m; ntot; colp; coli; colv; lb; ub; stat; basis; dense; pricing; harris;
      kern = Dense [||]; xb; cost;
      wy = ws.a_wy; ww = ws.a_ww; wrho = ws.a_wrho; wres = ws.a_wres;
      dred = ws.a_dred; dw = ws.a_dw; wflip = ws.a_wflip;
      cnd = ws.a_cnd; cnd_a = ws.a_cnda; cnd_r = ws.a_cndr;
      d_valid = false; niter = 0; degen_count = 0; bland = false;
      price_ptr = 0; age = 0 }
  in
  (* The starting basis matrix is the ±1 diagonal [diag]; both kernels
     represent it directly (the sparse factorization of a signed
     diagonal cannot fail, but fall back to the dense inverse if it
     somehow does rather than crash). *)
  let kern =
    if dense then
      Dense (Array.init m (fun i -> Array.init m (fun k -> if i = k then diag.(i) else 0.)))
    else
      match Lu.factorize ~m (fun i -> col_array st st.basis.(i)) with
      | Some lu -> Sparse lu
      | None ->
          Dense (Array.init m (fun i -> Array.init m (fun k -> if i = k then diag.(i) else 0.)))
  in
  st.kern <- kern;
  st

(* Rebuild a solver state from a prior optimal basis under new working
   bounds.  The column layout matches [init_state]; artificial columns
   are sealed at zero with a +1 sign (any nonsingular sign choice
   represents the same sealed variable, and a basic artificial must sit
   at zero anyway — the dual loop repairs it if the new bounds moved
   it).  The snapshot's stored factor is reopened verbatim — the basis
   matrix depends only on which columns are basic, not on bounds — so a
   restore normally costs one sparse FTRAN of the right-hand side; only
   a snapshot whose eta file outgrew [refresh_age], or one without a
   factor, pays for a fresh factorization.  Returns [None] when such a
   refresh finds the inherited basis matrix singular. *)
let warm_state ~dense ~pricing ~harris ~ws p ~lb:wlb ~ub:wub (b : Basis.t) =
  let m = Array.length p.rows in
  let n = p.ncols in
  let ntot = n + (2 * m) in
  build_csc ws p m;
  let colp = ws.colp and coli = ws.coli and colv = ws.colv in
  ws.a_lb <- ensure_f ws.a_lb ntot;
  ws.a_ub <- ensure_f ws.a_ub ntot;
  ws.a_cost <- ensure_f ws.a_cost ntot;
  ws.a_stat <- ensure_s ws.a_stat ntot;
  ws.a_basis <- ensure_i ws.a_basis m;
  ws.a_xb <- ensure_f ws.a_xb m;
  ws.a_wy <- ensure_f ws.a_wy m;
  ws.a_ww <- ensure_f ws.a_ww m;
  ws.a_wrho <- ensure_f ws.a_wrho m;
  ws.a_wres <- ensure_f ws.a_wres m;
  ws.a_dred <- ensure_f ws.a_dred ntot;
  ws.a_dw <- ensure_f ws.a_dw ntot;
  ws.a_wflip <- ensure_f ws.a_wflip m;
  ws.a_cnd <- ensure_i ws.a_cnd ntot;
  ws.a_cnda <- ensure_f ws.a_cnda ntot;
  ws.a_cndr <- ensure_f ws.a_cndr ntot;
  let lb = ws.a_lb and ub = ws.a_ub in
  Array.blit wlb 0 lb 0 n;
  Array.blit wub 0 ub 0 n;
  for i = 0 to m - 1 do
    let s = n + i in
    (match p.senses.(i) with
    | Model.Le ->
        lb.(s) <- 0.;
        ub.(s) <- infinity
    | Model.Ge ->
        lb.(s) <- neg_infinity;
        ub.(s) <- 0.
    | Model.Eq ->
        lb.(s) <- 0.;
        ub.(s) <- 0.);
    let art = n + m + i in
    FA.set colv colp.(art) 1.0;
    lb.(art) <- 0.;
    ub.(art) <- 0.
  done;
  let stat = ws.a_stat in
  Array.blit b.Basis.stat 0 stat 0 ntot;
  (* Nonbasic statuses must reference bounds that exist under the new
     box; reconcile the few that a bound change invalidated. *)
  for j = 0 to ntot - 1 do
    match stat.(j) with
    | Basic -> ()
    | At_lower when not (Float.is_finite lb.(j)) ->
        stat.(j) <- (if Float.is_finite ub.(j) then At_upper else Free_zero)
    | At_upper when not (Float.is_finite ub.(j)) ->
        stat.(j) <- (if Float.is_finite lb.(j) then At_lower else Free_zero)
    | Free_zero when lb.(j) > 0. || ub.(j) < 0. ->
        stat.(j) <- (if lb.(j) > 0. then At_lower else At_upper)
    | At_lower | At_upper | Free_zero -> ()
  done;
  let cost = ws.a_cost in
  Array.fill cost 0 ntot 0.;
  Array.blit p.obj 0 cost 0 n;
  Array.blit b.Basis.basis 0 ws.a_basis 0 m;
  let st =
    { p; m; ntot; colp; coli; colv; lb; ub; stat;
      basis = ws.a_basis;
      dense; pricing; harris; kern = Dense [||];
      xb = ws.a_xb; cost;
      wy = ws.a_wy; ww = ws.a_ww; wrho = ws.a_wrho; wres = ws.a_wres;
      dred = ws.a_dred; dw = ws.a_dw; wflip = ws.a_wflip;
      cnd = ws.a_cnd; cnd_a = ws.a_cnda; cnd_r = ws.a_cndr;
      d_valid = false; niter = 0; degen_count = 0; bland = false;
      price_ptr = 0; age = Basis.age b }
  in
  let restored =
    st.age <= refresh_age
    &&
    match b.Basis.factor with
    | Some f when Lu.factor_dim f = m ->
        if dense then begin
          (* Ablation mode: densify the stored factor column by column
             (column r of B⁻¹ is the FTRAN image of e_r). *)
          let lu = Lu.of_factor f in
          let binv = Array.init m (fun _ -> Array.make m 0.) in
          let x = Array.make m 0. in
          for r = 0 to m - 1 do
            Array.fill x 0 m 0.;
            x.(r) <- 1.0;
            Lu.ftran lu x;
            for i = 0 to m - 1 do
              binv.(i).(r) <- x.(i)
            done
          done;
          st.kern <- Dense binv;
          true
        end
        else begin
          st.kern <- Sparse (Lu.of_factor f);
          true
        end
    | Some _ | None -> false
  in
  if restored then begin
    recompute_xb st;
    Some st
  end
  else if refactorize st then Some st
  else None

type dual_outcome = Dual_feasible | Dual_proven_infeasible | Dual_stalled

(* Bounded-variable dual simplex: starting from a (near) dual-feasible
   basis whose basic values may violate the new bounds, drive every
   basic variable back inside its bounds while keeping the reduced
   costs signed.  Each round picks the most violated basic variable,
   prices the candidate entering columns against row r of B^{-1}
   (one BTRAN), and pivots on the smallest dual ratio |d_j / alpha_j|.
   Failure of the ratio test is a primal infeasibility certificate: the
   violated row proves no setting of the nonbasic variables can pull the
   basic one back inside its bounds.

   With [st.harris] set, the entering choice runs the bound-flipping
   (long-step) ratio test instead: the candidate breakpoints are walked
   in increasing dual-ratio order, and every boxed candidate whose flip
   keeps the remaining infeasibility slope positive has its bounds
   flipped rather than entering — the pivot lands on the first blocking
   breakpoint.  One FTRAN of the combined flipped columns updates the
   basic values for all flips at once.  Boxed 0-1 routing variables
   thus cross the box in O(1) bookkeeping instead of one pivot each. *)
let dual_simplex st ~max_pivots ~feas_tol ~deadline =
  let rec loop pivots =
    if pivots >= max_pivots then Dual_stalled
    else if
      Float.is_finite deadline
      && pivots land 31 = 0
      && Clock.now () > deadline
    then Dual_stalled
    else begin
      (* Most violated basic variable. *)
      let r = ref (-1) and viol = ref feas_tol and high = ref false in
      for i = 0 to st.m - 1 do
        let k = st.basis.(i) in
        let below = st.lb.(k) -. st.xb.(i) in
        let above = st.xb.(i) -. st.ub.(k) in
        if below > !viol then begin
          r := i;
          viol := below;
          high := false
        end;
        if above > !viol then begin
          r := i;
          viol := above;
          high := true
        end
      done;
      if !r < 0 then Dual_feasible
      else begin
        let r = !r and high = !high and viol = !viol in
        let k = st.basis.(r) in
        binv_row st r;
        let rho = st.wrho in
        compute_duals st;
        let y = st.wy in
        (* s * alpha_j > 0 means raising x_j moves x_k toward the
           violated bound, so nonbasics at lower (free to rise) need
           s*alpha > 0 and nonbasics at upper need s*alpha < 0. *)
        let s = if high then 1.0 else -1.0 in
        let ncand = ref 0 in
        for j = 0 to st.ntot - 1 do
          if st.stat.(j) <> Basic && st.lb.(j) < st.ub.(j) then begin
            let a = rho_dot st rho j in
            let sa = s *. a in
            let eligible =
              match st.stat.(j) with
              | At_lower -> sa > pivot_tol
              | At_upper -> sa < -.pivot_tol
              | Free_zero -> Float.abs sa > pivot_tol
              | Basic -> false
            in
            if eligible then begin
              let c = !ncand in
              st.cnd.(c) <- j;
              st.cnd_a.(c) <- a;
              st.cnd_r.(c) <- Float.max 0. (reduced_cost st y j /. sa);
              incr ncand
            end
          end
        done;
        let ncand = !ncand in
        if ncand = 0 then Dual_proven_infeasible
        else begin
          (* Entering choice.  Classic: smallest dual ratio, largest
             |alpha| tiebreak.  Bound-flipping: walk breakpoints in ratio
             order, flipping boxed candidates while the remaining slope
             stays positive. *)
          let enter = ref (-1) in
          let flips = ref [] in
          if not st.harris then begin
            let best_ratio = ref infinity and enter_alpha = ref 0. in
            for c = 0 to ncand - 1 do
              let ratio = st.cnd_r.(c) and a = st.cnd_a.(c) in
              if
                ratio < !best_ratio -. 1e-12
                || (ratio < !best_ratio +. 1e-12 && Float.abs a > Float.abs !enter_alpha)
              then begin
                enter := st.cnd.(c);
                best_ratio := ratio;
                enter_alpha := a
              end
            done
          end
          else begin
            let ord = Array.init ncand Fun.id in
            Array.sort
              (fun x y ->
                let c = Float.compare st.cnd_r.(x) st.cnd_r.(y) in
                if c <> 0 then c
                else Float.compare (Float.abs st.cnd_a.(y)) (Float.abs st.cnd_a.(x)))
              ord;
            let slope = ref viol in
            let t = ref 0 in
            while !enter < 0 && !t < ncand do
              let c = ord.(!t) in
              let j = st.cnd.(c) in
              let span = st.ub.(j) -. st.lb.(j) in
              let drop = Float.abs st.cnd_a.(c) *. span in
              if Float.is_finite span && !slope -. drop > 1e-9 && !t < ncand - 1
              then begin
                (* Flipping j keeps the row infeasible: pass the
                   breakpoint.  (Never flip the last candidate — a pivot
                   must land somewhere.) *)
                slope := !slope -. drop;
                flips := c :: !flips;
                incr t
              end
              else enter := j
            done
          end;
          if !enter < 0 then Dual_proven_infeasible
          else begin
            (* Commit the bound flips: one combined column, one FTRAN. *)
            (match !flips with
            | [] -> ()
            | fl ->
                Array.fill st.wflip 0 st.m 0.;
                List.iter
                  (fun c ->
                    let j = st.cnd.(c) in
                    let span = st.ub.(j) -. st.lb.(j) in
                    let delta =
                      match st.stat.(j) with
                      | At_lower ->
                          st.stat.(j) <- At_upper;
                          span
                      | At_upper ->
                          st.stat.(j) <- At_lower;
                          -.span
                      | Free_zero | Basic -> 0.
                    in
                    if delta <> 0. then
                      for e = st.colp.(j) to st.colp.(j + 1) - 1 do
                        let i = st.coli.(e) in
                        st.wflip.(i) <- st.wflip.(i) +. (FA.get st.colv e *. delta)
                      done)
                  fl;
                (match st.kern with
                | Dense binv ->
                    let tmp = st.wres in
                    Array.blit st.wflip 0 tmp 0 st.m;
                    for i = 0 to st.m - 1 do
                      let acc = ref 0. in
                      let row = binv.(i) in
                      for e = 0 to st.m - 1 do
                        acc := !acc +. (row.(e) *. tmp.(e))
                      done;
                      st.wflip.(i) <- !acc
                    done
                | Sparse lu -> Lu.ftran lu st.wflip);
                for i = 0 to st.m - 1 do
                  st.xb.(i) <- st.xb.(i) -. st.wflip.(i)
                done);
            let j = !enter in
            ftran_col st j;
            let w = st.ww in
            let alpha = w.(r) in
            if Float.abs alpha < pivot_tol then Dual_stalled
            else begin
              let bound = if high then st.ub.(k) else st.lb.(k) in
              let delta = (st.xb.(r) -. bound) /. alpha in
              st.niter <- st.niter + 1;
              apply_step st j 1.0 w delta;
              pivot st j 1.0 w r delta ~to_upper:high;
              if st.niter mod 256 = 0 then ignore (refactorize st);
              loop (pivots + 1)
            end
          end
        end
      end
    end
  in
  loop 0

(* Run simplex iterations under the current [st.cost] until no entering
   column is found.  Returns [Ok ()] at phase optimality.

   Devex mode maintains the reduced costs incrementally (the pivot-row
   sweep in {!devex_update} pays for both the weight and the cost
   update), refreshing them from the duals at phase entry, every
   refactorization period, after a Bland excursion, and — always —
   before optimality is declared, so a drifted estimate can never
   terminate the phase early.  The Bland fallback itself runs the
   classic full lowest-index scan on fresh duals, exactly as in Dantzig
   mode, preserving the termination guarantee. *)
let optimize st ~max_iterations ~dual_tol ~deadline =
  let refactor_period = 512 in
  let devex = st.pricing = Devex in
  if devex then begin
    refresh_dred st;
    reset_devex st
  end;
  let rec loop () =
    if st.niter >= max_iterations then Error Status.Lp_iteration_limit
    else if
      Float.is_finite deadline
      && st.niter land 63 = 0
      && Clock.now () > deadline
    then Error Status.Lp_iteration_limit
    else begin
      if devex && (not st.bland) && not st.d_valid then begin
        refresh_dred st;
        reset_devex st
      end;
      let cand =
        if (not devex) || st.bland then price st ~dual_tol
        else
          match devex_price st ~dual_tol with
          | Some _ as c -> c
          | None ->
              (* Confirm optimality on fresh reduced costs. *)
              refresh_dred st;
              devex_price st ~dual_tol
      in
      match cand with
      | None -> Ok ()
      | Some (j, d) -> (
          let sigma =
            match st.stat.(j) with
            | At_lower -> 1.0
            | At_upper -> -1.0
            | Free_zero -> if d < 0. then 1.0 else -1.0
            | Basic -> assert false
          in
          st.niter <- st.niter + 1;
          if st.niter mod refactor_period = 0 then begin
            ignore (refactorize st);
            if devex && not st.bland then refresh_dred st
          end;
          ftran_col st j;
          let w = st.ww in
          match ratio_test st j sigma w with
          | Unbounded -> Error Status.Lp_unbounded
          | Bound_flip t ->
              apply_step st j sigma w t;
              st.stat.(j) <- (match st.stat.(j) with At_lower -> At_upper | _ -> At_lower);
              st.degen_count <- 0;
              st.bland <- false;
              (* A flip keeps the basis, hence duals and reduced costs,
                 unchanged. *)
              loop ()
          | Leave { row; t; to_upper } ->
              if t <= 1e-10 then begin
                st.degen_count <- st.degen_count + 1;
                if st.degen_count > 200 then st.bland <- true
              end
              else begin
                st.degen_count <- 0;
                st.bland <- false
              end;
              if devex && not st.bland then devex_update st ~q:j ~r:row ~alpha_rq:w.(row)
              else st.d_valid <- false;
              apply_step st j sigma w t;
              pivot st j sigma w row t ~to_upper;
              loop ())
    end
  in
  loop ()

let extract_primal st =
  let n = st.p.ncols in
  let x = Array.make n 0. in
  for j = 0 to n - 1 do
    if st.stat.(j) <> Basic then x.(j) <- nb_value st j
  done;
  for i = 0 to st.m - 1 do
    let k = st.basis.(i) in
    if k < n then x.(k) <- st.xb.(i)
  done;
  x

let true_objective st x =
  let acc = ref st.p.obj_const in
  for j = 0 to st.p.ncols - 1 do
    acc := !acc +. (st.p.obj.(j) *. x.(j))
  done;
  !acc

let cold_solve ~dense ~pricing ~harris ~ws ~max_iterations ~feas_tol ~deadline p ~lb ~ub =
  let m = Array.length p.rows in
  let st = init_state ~dense ~pricing ~harris ~ws p ~lb ~ub in
  (* Phase 1: minimize total artificial value (cost set by init). *)
  let phase1_needed = ref false in
  for i = 0 to m - 1 do
    if st.basis.(i) >= p.ncols + m then phase1_needed := true
  done;
  let phase1 =
    if !phase1_needed then optimize st ~max_iterations ~dual_tol:1e-9 ~deadline
    else Ok ()
  in
  match phase1 with
  | Error s ->
      { status = s; objective = infinity; primal = extract_primal st;
        iterations = st.niter; basis = None; warm = Cold }
  | Ok () ->
      let infeas = current_objective st in
      if !phase1_needed && infeas > feas_tol *. 10. then
        { status = Status.Lp_infeasible; objective = infinity;
          primal = extract_primal st; iterations = st.niter; basis = None; warm = Cold }
      else begin
        (* Seal artificials and install the phase-2 cost. *)
        for i = 0 to m - 1 do
          let art = p.ncols + m + i in
          st.ub.(art) <- 0.;
          st.lb.(art) <- 0.;
          st.cost.(art) <- 0.
        done;
        Array.blit p.obj 0 st.cost 0 p.ncols;
        st.bland <- false;
        st.degen_count <- 0;
        match optimize st ~max_iterations ~dual_tol:1e-7 ~deadline with
        | Error s ->
            let x = extract_primal st in
            let objective = if s = Status.Lp_iteration_limit then true_objective st x else neg_infinity in
            { status = s; objective; primal = x; iterations = st.niter; basis = None; warm = Cold }
        | Ok () ->
            (* Only hand out a basis that re-verified under a fresh
               factorization: warm restarts, cut separation and
               reduced-cost fixing all trust the snapshot's factor
               blindly, and a near-singular terminal basis would feed
               them garbage.  Losing the snapshot merely costs the
               children a cold solve. *)
            let fresh = refactorize st in
            let x = extract_primal st in
            { status = Status.Lp_optimal; objective = true_objective st x;
              primal = x; iterations = st.niter;
              basis = (if fresh then Some (snapshot st) else None); warm = Cold }
      end

let basic_within_bounds st tol =
  let ok = ref true in
  for i = 0 to st.m - 1 do
    let k = st.basis.(i) in
    if st.xb.(i) < st.lb.(k) -. tol || st.xb.(i) > st.ub.(k) +. tol then ok := false
  done;
  !ok

(* Warm-start attempt: restore the parent basis, repair primal
   feasibility with dual pivots, then finish with (usually zero) primal
   iterations.  [None] means the caller must fall back to a cold solve:
   the basis was stale or singular, or dual pivoting stalled. *)
let try_warm ~dense ~pricing ~harris ~ws ~max_iterations ~feas_tol ~deadline p ~lb ~ub b =
  let m = Array.length p.rows in
  if not (Basis.compatible b ~ncols:p.ncols ~nrows:m && Basis.well_formed b) then None
  else
    match warm_state ~dense ~pricing ~harris ~ws p ~lb ~ub b with
    | None -> None
    | Some st -> (
        match dual_simplex st ~max_pivots:(100 + (2 * m)) ~feas_tol ~deadline with
        | Dual_stalled -> None
        | Dual_proven_infeasible ->
            Some
              { status = Status.Lp_infeasible; objective = infinity;
                primal = extract_primal st; iterations = st.niter;
                basis = None; warm = Warm }
        | Dual_feasible -> (
            match optimize st ~max_iterations ~dual_tol:1e-7 ~deadline with
            | Error Status.Lp_unbounded ->
                Some
                  { status = Status.Lp_unbounded; objective = neg_infinity;
                    primal = extract_primal st; iterations = st.niter;
                    basis = None; warm = Warm }
            | Error s ->
                let x = extract_primal st in
                Some
                  { status = s; objective = true_objective st x; primal = x;
                    iterations = st.niter; basis = None; warm = Warm }
            | Ok () ->
                (* Final hygiene: a warm basis whose basic values drift
                   out of primal feasibility is not trusted.  Drift is
                   bounded by [refresh_age], so no unconditional O(m³)
                   refactorization is needed here. *)
                if not (basic_within_bounds st (feas_tol *. 100.)) then None
                else begin
                  let x = extract_primal st in
                  Some
                    { status = Status.Lp_optimal; objective = true_objective st x;
                      primal = x; iterations = st.niter;
                      basis = Some (snapshot st); warm = Warm }
                end))

let solve ?basis ?max_iterations ?(feas_tol = 1e-7) ?(deadline = infinity)
    ?(dense = false) ?(pricing = Devex) ?(harris = true) ?ws p ~lb ~ub =
  let m = Array.length p.rows in
  let ws = match ws with Some w -> w | None -> create_workspace () in
  (* Reject inverted working bounds up-front (branch & bound can create
     them); an empty box is infeasible. *)
  let inverted = ref false in
  for j = 0 to p.ncols - 1 do
    if lb.(j) > ub.(j) +. 1e-12 then inverted := true
  done;
  if !inverted then
    { status = Status.Lp_infeasible; objective = infinity;
      primal = Array.make p.ncols 0.; iterations = 0; basis = None; warm = Cold }
  else begin
    let max_iterations =
      match max_iterations with
      | Some k -> k
      | None -> 50_000 + (50 * (m + p.ncols))
    in
    match basis with
    | None -> cold_solve ~dense ~pricing ~harris ~ws ~max_iterations ~feas_tol ~deadline p ~lb ~ub
    | Some b -> (
        match try_warm ~dense ~pricing ~harris ~ws ~max_iterations ~feas_tol ~deadline p ~lb ~ub b with
        | Some r -> r
        | None ->
            { (cold_solve ~dense ~pricing ~harris ~ws ~max_iterations ~feas_tol ~deadline p ~lb ~ub) with
              warm = Warm_fallback })
  end

(* Append rows to a problem snapshot (used by the cut loop).  The
   existing arrays are shared structurally; only the row-indexed arrays
   are rebuilt. *)
let add_rows p extra =
  match extra with
  | [] -> p
  | _ ->
      let rows = Array.of_list (List.map (fun (r, _, _) -> r) extra) in
      let senses = Array.of_list (List.map (fun (_, s, _) -> s) extra) in
      let rhs = Array.of_list (List.map (fun (_, _, b) -> b) extra) in
      {
        p with
        rows = Array.append p.rows rows;
        senses = Array.append p.senses senses;
        rhs = Array.append p.rhs rhs;
      }

type tableau = {
  t_ncols : int;
  t_nrows : int;
  t_basic : int array;
  t_xb : float array;
  t_stat : vstat array;
  t_lb : float array;
  t_ub : float array;
  t_row : int -> (int * float) array;
}

(* Simplex tableau access for cut separation: rebuild the solver state
   from an optimal basis (exactly as a warm start would) and expose the
   basic values plus on-demand tableau rows alpha = B^{-1} A restricted
   to the nonbasic, non-fixed columns.  Fixed columns (sealed
   artificials, presolve-fixed structurals) contribute nothing to a cut
   because their shifted value is identically zero.

   Always runs on a private workspace: the returned [t_row] closure
   keeps the solver state alive, so it must not share buffers with
   subsequent solves on a caller-owned workspace. *)
let tableau ?(dense = false) p ~lb ~ub b =
  if not (Basis.compatible b ~ncols:p.ncols ~nrows:(Array.length p.rows) && Basis.well_formed b)
  then None
  else
    match
      warm_state ~dense ~pricing:Dantzig ~harris:false ~ws:(create_workspace ()) p ~lb ~ub b
    with
    | None -> None
    | Some st when not (st.age = 0 || refactorize st) ->
        (* Cut coefficients are linear in B^{-1}; a factor that cannot
           be re-verified by factorization would yield invalid cuts. *)
        None
    | Some st ->
        let row i =
          binv_row st i;
          let rho = st.wrho in
          let out = ref [] in
          for j = st.ntot - 1 downto 0 do
            if st.stat.(j) <> Basic && st.lb.(j) < st.ub.(j) then begin
              let a = rho_dot st rho j in
              if Float.abs a > 1e-9 then out := (j, a) :: !out
            end
          done;
          Array.of_list !out
        in
        Some
          {
            t_ncols = st.p.ncols;
            t_nrows = st.m;
            t_basic = Array.copy st.basis;
            t_xb = Array.copy st.xb;
            t_stat = Array.copy st.stat;
            t_lb = Array.copy st.lb;
            t_ub = Array.copy st.ub;
            t_row = row;
          }

(* Phase-2 reduced costs of the structural columns under an optimal
   basis: d = c - c_B B^{-1} A, with y = B^{-T} c_B obtained by one
   sparse BTRAN against the snapshot's factor.  A sealed artificial in
   the basis carries zero cost, so its (unknown) column sign cannot
   perturb y.  Used for reduced-cost fixing in branch & bound once an
   incumbent exists. *)
let reduced_costs p (b : Basis.t) =
  let m = Array.length p.rows in
  let n = p.ncols in
  if not (Basis.compatible b ~ncols:n ~nrows:m) then None
  else begin
    let lu =
      match b.Basis.factor with
      | Some f -> Some (Lu.of_factor f)
      | None ->
          let ws = create_workspace () in
          build_csc ws p m;
          let colp = ws.colp and coli = ws.coli and colv = ws.colv in
          Lu.factorize ~m (fun i ->
              let k = b.Basis.basis.(i) in
              let s = colp.(k) and e = colp.(k + 1) in
              Array.init (e - s) (fun t -> (coli.(s + t), FA.get colv (s + t))))
    in
    match lu with
    | None -> None
    | Some lu ->
        let y = Array.make m 0. in
        for i = 0 to m - 1 do
          let k = b.Basis.basis.(i) in
          if k < n then y.(i) <- p.obj.(k)
        done;
        Lu.btran lu y;
        let d = Array.copy p.obj in
        Array.iteri
          (fun i row ->
            if y.(i) <> 0. then
              Array.iter (fun (j, a) -> d.(j) <- d.(j) -. (y.(i) *. a)) row)
          p.rows;
        Some d
  end

let solve_model ?max_iterations m =
  let p = of_model m in
  let n = p.ncols in
  let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
  let r = solve ?max_iterations p ~lb ~ub in
  match fst (Model.objective m) with
  | Model.Minimize -> r
  | Model.Maximize ->
      let objective =
        match r.status with
        | Status.Lp_unbounded -> infinity
        | Status.Lp_infeasible -> neg_infinity
        | Status.Lp_optimal | Status.Lp_iteration_limit -> -.r.objective
      in
      { r with objective }
