type problem = {
  ncols : int;
  rows : (int * float) array array;
  senses : Model.sense array;
  rhs : float array;
  obj : float array;
  obj_const : float;
}

type warm_kind = Cold | Warm | Warm_fallback

type result = {
  status : Status.lp_status;
  objective : float;
  primal : float array;
  iterations : int;
  basis : Basis.t option;
  warm : warm_kind;
}

let of_model m =
  let n = Model.nvars m in
  let dir, obj_expr = Model.objective m in
  let sign = match dir with Model.Minimize -> 1.0 | Model.Maximize -> -1.0 in
  let obj = Array.make n 0. in
  Lin.iter (fun v c -> if v < n then obj.(v) <- sign *. c) obj_expr;
  let cons = Model.constrs m in
  let rows =
    Array.map
      (fun (c : Model.constr) -> Array.of_list (Lin.terms c.Model.c_expr))
      cons
  in
  let senses = Array.map (fun (c : Model.constr) -> c.Model.c_sense) cons in
  let rhs = Array.map (fun (c : Model.constr) -> c.Model.c_rhs) cons in
  { ncols = n; rows; senses; rhs; obj; obj_const = sign *. Lin.constant obj_expr }

(* Nonbasic variable status.  Basic variables are tracked via [basis].
   Shared with {!Basis} so snapshots can be restored without
   translation. *)
type vstat = Basis.vstat = Basic | At_lower | At_upper | Free_zero

(* The basis representation behind FTRAN/BTRAN.  The sparse LU kernel is
   the default; the dense explicit inverse survives as an ablation
   baseline ([?dense] on {!solve}) so the bench can report the kernel
   speedup honestly. *)
type kernel =
  | Dense of float array array  (* explicit inverse, m x m *)
  | Sparse of Lu.t

type state = {
  p : problem;
  m : int;  (* rows *)
  ntot : int;  (* structural + slack + artificial columns *)
  cols : (int * float) array array;  (* sparse columns, length ntot *)
  lb : float array;  (* working bounds, length ntot *)
  ub : float array;
  stat : vstat array;
  basis : int array;  (* column basic in each row *)
  dense : bool;  (* which kernel [refactorize] rebuilds *)
  mutable kern : kernel;
  xb : float array;  (* values of basic variables per row *)
  cost : float array;  (* current-phase cost, length ntot *)
  (* Scratch vectors, allocated once per solve and reused by every
     iteration (pricing, ratio test, dual repair, tableau rows) instead
     of a fresh [Array.make] per call — B&B re-solves thousands of nodes
     and the old per-call buffers dominated minor-GC pressure. *)
  wy : float array;  (* dual prices, row-indexed *)
  ww : float array;  (* entering column FTRAN image, position-indexed *)
  wrho : float array;  (* row of B^-1 (dual pricing / tableau rows) *)
  wres : float array;  (* RHS residual under the nonbasic assignment *)
  mutable niter : int;
  mutable degen_count : int;
  mutable bland : bool;
  mutable price_ptr : int;  (* partial-pricing scan cursor *)
  mutable age : int;  (* eta/pivot updates since last factorization *)
}

let pivot_tol = 1e-9

(* Refactorize once the eta file (or dense update chain) is this long:
   each product-form eta both slows the solves down and compounds
   rounding, so the budget bounds drift across warm-start generations
   exactly like the old dense [refresh_age] did. *)
let eta_limit = 64

let nb_value st j =
  match st.stat.(j) with
  | At_lower -> st.lb.(j)
  | At_upper -> st.ub.(j)
  | Free_zero -> 0.
  | Basic -> invalid_arg "nb_value: basic"

(* Build sparse columns for structural variables from the rows, and
   single-entry columns for slacks; artificial columns are appended by
   [init_state] with their sign. *)
let build_cols p m =
  let n = p.ncols in
  let counts = Array.make n 0 in
  Array.iter (fun row -> Array.iter (fun (j, _) -> counts.(j) <- counts.(j) + 1) row) p.rows;
  let cols = Array.make (n + (2 * m)) [||] in
  let fill = Array.make n 0 in
  for j = 0 to n - 1 do
    cols.(j) <- Array.make counts.(j) (0, 0.)
  done;
  Array.iteri
    (fun i row ->
      Array.iter
        (fun (j, a) ->
          cols.(j).(fill.(j)) <- (i, a);
          fill.(j) <- fill.(j) + 1)
        row)
    p.rows;
  cols

(* ------------------------------------------------------------------ *)
(* Kernel operations                                                   *)
(* ------------------------------------------------------------------ *)

(* y = c_B^T B^{-1}, into [st.wy] (row-indexed). *)
let compute_duals st =
  match st.kern with
  | Dense binv ->
      Array.fill st.wy 0 st.m 0.;
      for i = 0 to st.m - 1 do
        let cb = st.cost.(st.basis.(i)) in
        if cb <> 0. then begin
          let row = binv.(i) in
          for k = 0 to st.m - 1 do
            st.wy.(k) <- st.wy.(k) +. (cb *. row.(k))
          done
        end
      done
  | Sparse lu ->
      for i = 0 to st.m - 1 do
        st.wy.(i) <- st.cost.(st.basis.(i))
      done;
      Lu.btran lu st.wy

(* w = B^{-1} A_j, into [st.ww] (position-indexed). *)
let ftran_col st j =
  Array.fill st.ww 0 st.m 0.;
  (match st.kern with
  | Dense binv ->
      Array.iter
        (fun (r, a) ->
          if a <> 0. then
            for i = 0 to st.m - 1 do
              st.ww.(i) <- st.ww.(i) +. (binv.(i).(r) *. a)
            done)
        st.cols.(j)
  | Sparse lu ->
      Array.iter (fun (r, a) -> st.ww.(r) <- st.ww.(r) +. a) st.cols.(j);
      Lu.ftran lu st.ww)

(* rho = e_r^T B^{-1} (row [r] of the inverse), into [st.wrho]
   (row-indexed). *)
let binv_row st r =
  match st.kern with
  | Dense binv -> Array.blit binv.(r) 0 st.wrho 0 st.m
  | Sparse lu ->
      Array.fill st.wrho 0 st.m 0.;
      st.wrho.(r) <- 1.0;
      Lu.btran lu st.wrho

let reduced_cost st y j =
  let d = ref st.cost.(j) in
  Array.iter (fun (i, a) -> d := !d -. (y.(i) *. a)) st.cols.(j);
  !d

(* xb = B^{-1} (b - N x_N) under the current kernel and bounds. *)
let recompute_xb st =
  let resid = st.wres in
  Array.blit st.p.rhs 0 resid 0 st.m;
  for j = 0 to st.ntot - 1 do
    if st.stat.(j) <> Basic then begin
      let v = nb_value st j in
      if v <> 0. then
        Array.iter (fun (i, a) -> resid.(i) <- resid.(i) -. (a *. v)) st.cols.(j)
    end
  done;
  match st.kern with
  | Dense binv ->
      for i = 0 to st.m - 1 do
        let acc = ref 0. in
        let row = binv.(i) in
        for k = 0 to st.m - 1 do
          acc := !acc +. (row.(k) *. resid.(k))
        done;
        st.xb.(i) <- !acc
      done
  | Sparse lu ->
      Array.blit resid 0 st.xb 0 st.m;
      Lu.ftran lu st.xb

(* Rebuild the factorization (and xb) from scratch — numerical hygiene.
   Returns false, leaving the state untouched, when the basis matrix is
   singular or fails its conditioning probe. *)
let refactorize st =
  let m = st.m in
  if not st.dense then begin
    match Lu.factorize ~m (fun i -> st.cols.(st.basis.(i))) with
    | Some lu ->
        st.kern <- Sparse lu;
        st.age <- 0;
        recompute_xb st;
        true
    | None -> false
  end
  else begin
    (* Assemble the basis matrix and invert via Gauss-Jordan with
       partial pivoting. *)
    let a = Array.init m (fun _ -> Array.make m 0.) in
    let inv = Array.init m (fun i -> Array.init m (fun k -> if i = k then 1.0 else 0.)) in
    for i = 0 to m - 1 do
      (* Accumulate rather than assign: ftran/btran sum duplicate entries
         within a sparse column, and the factorization must invert the
         same matrix they apply. *)
      Array.iter (fun (r, c) -> a.(r).(i) <- a.(r).(i) +. c) st.cols.(st.basis.(i))
    done;
    let ok = ref true in
    for col = 0 to m - 1 do
      if !ok then begin
        let piv = ref col in
        for i = col + 1 to m - 1 do
          if Float.abs a.(i).(col) > Float.abs a.(!piv).(col) then piv := i
        done;
        if Float.abs a.(!piv).(col) < 1e-12 then ok := false
        else begin
          if !piv <> col then begin
            let tmp = a.(col) in
            a.(col) <- a.(!piv);
            a.(!piv) <- tmp;
            let tmp = inv.(col) in
            inv.(col) <- inv.(!piv);
            inv.(!piv) <- tmp
          end;
          let d = a.(col).(col) in
          for k = 0 to m - 1 do
            a.(col).(k) <- a.(col).(k) /. d;
            inv.(col).(k) <- inv.(col).(k) /. d
          done;
          for i = 0 to m - 1 do
            if i <> col then begin
              let f = a.(i).(col) in
              if f <> 0. then
                for k = 0 to m - 1 do
                  a.(i).(k) <- a.(i).(k) -. (f *. a.(col).(k));
                  inv.(i).(k) <- inv.(i).(k) -. (f *. inv.(col).(k))
                done
            end
          done
        end
      end
    done;
    (* Gauss-Jordan "succeeds" on a near-singular basis (every pivot
       clears 1e-12) yet the computed inverse can be off by O(cond·eps) —
       whole units at condition 1e14 — which silently corrupts [xb] and
       the objective.  Probe the product on the all-ones vector and
       reject ill-conditioned bases so callers fall back to a cold solve
       that picks a different basis path. *)
    if !ok then begin
      let y = Array.make m 0. in
      for i = 0 to m - 1 do
        let acc = ref 0. in
        let row = inv.(i) in
        for k = 0 to m - 1 do
          acc := !acc +. row.(k)
        done;
        y.(i) <- !acc
      done;
      let z = Array.make m 0. in
      for i = 0 to m - 1 do
        if y.(i) <> 0. then
          Array.iter (fun (r, c) -> z.(r) <- z.(r) +. (c *. y.(i))) st.cols.(st.basis.(i))
      done;
      let err = ref 0. in
      let ymax = ref 1. in
      for i = 0 to m - 1 do
        err := Float.max !err (Float.abs (z.(i) -. 1.));
        ymax := Float.max !ymax (Float.abs y.(i))
      done;
      if !err > 1e-8 *. !ymax then ok := false
    end;
    if !ok then begin
      st.kern <- Dense inv;
      st.age <- 0;
      recompute_xb st
    end;
    !ok
  end

(* Basis change at position [r]: the entering column's FTRAN image [w]
   defines either one elementary row transform of the dense inverse or
   one product-form eta appended to the LU kernel.  A shaky eta (pivot
   tiny relative to the column) or a full eta file triggers an immediate
   refactorization. *)
let kernel_update st r w =
  match st.kern with
  | Dense binv ->
      let wr = w.(r) in
      let brow = binv.(r) in
      for k = 0 to st.m - 1 do
        brow.(k) <- brow.(k) /. wr
      done;
      for i = 0 to st.m - 1 do
        if i <> r then begin
          let f = w.(i) in
          if Float.abs f > 0. then begin
            let row = binv.(i) in
            for k = 0 to st.m - 1 do
              row.(k) <- row.(k) -. (f *. brow.(k))
            done
          end
        end
      done;
      st.age <- st.age + 1
  | Sparse lu ->
      let stable = Lu.update lu ~r ~w in
      st.age <- st.age + 1;
      if (not stable) || Lu.neta lu >= eta_limit then ignore (refactorize st)

(* ------------------------------------------------------------------ *)
(* Pricing                                                             *)
(* ------------------------------------------------------------------ *)

let price_score st d j =
  match st.stat.(j) with
  | At_lower -> -.d
  | At_upper -> d
  | Free_zero -> Float.abs d
  | Basic -> 0.

(* Select the entering column, or None at (phase-)optimality.

   Default: partial (candidate-list) Dantzig pricing — scan a block of
   columns starting at the cursor, return the best candidate of the
   first block that has one, and resume the next iteration where this
   one left off.  An iteration therefore prices O(block) columns
   instead of all of them; only a (phase-)optimal iteration pays for the
   full wrap that proves no candidate exists.  Under Bland's rule the
   scan is the classic full lowest-index pass, preserving the
   termination guarantee. *)
let price st ~dual_tol =
  compute_duals st;
  let y = st.wy in
  if st.bland then begin
    let best = ref None in
    let j = ref 0 in
    while !best = None && !j < st.ntot do
      let jj = !j in
      if st.stat.(jj) <> Basic && st.lb.(jj) < st.ub.(jj) then begin
        let d = reduced_cost st y jj in
        if price_score st d jj > dual_tol then best := Some (jj, d)
      end;
      incr j
    done;
    !best
  end
  else begin
    let ntot = st.ntot in
    let block =
      let b = if ntot / 16 > 128 then ntot / 16 else 128 in
      if b >= ntot then ntot else b
    in
    let best = ref None and best_score = ref dual_tol in
    let scanned = ref 0 in
    let ptr = ref st.price_ptr in
    while !best = None && !scanned < ntot do
      let upto = if block < ntot - !scanned then block else ntot - !scanned in
      for t = 0 to upto - 1 do
        let j =
          let j = !ptr + t in
          if j >= ntot then j - ntot else j
        in
        if st.stat.(j) <> Basic && st.lb.(j) < st.ub.(j) then begin
          let d = reduced_cost st y j in
          let score = price_score st d j in
          if score > !best_score then begin
            best := Some (j, d);
            best_score := score
          end
        end
      done;
      ptr := (let p = !ptr + upto in if p >= ntot then p - ntot else p);
      scanned := !scanned + upto
    done;
    st.price_ptr <- !ptr;
    !best
  end

type ratio_outcome =
  | Unbounded
  | Bound_flip of float
  | Leave of { row : int; t : float; to_upper : bool }

let ratio_test st j sigma w =
  let span = st.ub.(j) -. st.lb.(j) in
  let best_t = ref (if Float.is_finite span then span else infinity) in
  let leave = ref None in
  for i = 0 to st.m - 1 do
    let wi = w.(i) in
    if Float.abs wi > pivot_tol then begin
      let k = st.basis.(i) in
      let dx = -.sigma *. wi in
      let t, to_upper =
        if dx > 0. then
          (if Float.is_finite st.ub.(k) then (st.ub.(k) -. st.xb.(i)) /. dx else infinity), true
        else (if Float.is_finite st.lb.(k) then (st.lb.(k) -. st.xb.(i)) /. dx else infinity), false
      in
      let t = Float.max t 0. in
      let better =
        t < !best_t -. 1e-12
        || (t <= !best_t +. 1e-12
            &&
            match !leave with
            | None -> true
            | Some (r, _) ->
                if st.bland then st.basis.(i) < st.basis.(r)
                else Float.abs wi > Float.abs w.(r))
      in
      if better then begin
        best_t := Float.min t !best_t;
        leave := Some (i, to_upper)
      end
    end
  done;
  match !leave with
  | None -> if Float.is_finite !best_t then Bound_flip !best_t else Unbounded
  | Some (r, to_upper) ->
      if Float.is_finite span && span <= !best_t then Bound_flip span
      else if Float.is_finite !best_t then Leave { row = r; t = !best_t; to_upper }
      else Unbounded

let apply_step st j sigma w t =
  if t <> 0. then
    for i = 0 to st.m - 1 do
      st.xb.(i) <- st.xb.(i) -. (sigma *. w.(i) *. t)
    done;
  ignore j

let pivot st j sigma w r t ~to_upper =
  let enter_val = nb_value st j +. (sigma *. t) in
  let leaving = st.basis.(r) in
  st.stat.(leaving) <- (if to_upper then At_upper else At_lower);
  (* Snap the leaving variable exactly onto its bound. *)
  st.basis.(r) <- j;
  st.stat.(j) <- Basic;
  st.xb.(r) <- enter_val;
  kernel_update st r w

let current_objective st =
  let total = ref 0. in
  for j = 0 to st.ntot - 1 do
    if st.stat.(j) <> Basic && st.cost.(j) <> 0. then
      total := !total +. (st.cost.(j) *. nb_value st j)
  done;
  for i = 0 to st.m - 1 do
    let c = st.cost.(st.basis.(i)) in
    if c <> 0. then total := !total +. (c *. st.xb.(i))
  done;
  !total

(* Snapshot the basis header plus (when obtainable) a sparse factor of
   the basis matrix — never a dense inverse, so node records cost
   O(nonzeros) instead of O(m²).  In dense-ablation mode the factor is
   computed fresh here; a failure just yields a header-only snapshot
   that restores via refactorization. *)
let snapshot st =
  let factor =
    match st.kern with
    | Sparse lu -> Some (Lu.snapshot lu)
    | Dense _ -> (
        match Lu.factorize ~m:st.m (fun i -> st.cols.(st.basis.(i))) with
        | Some lu -> Some (Lu.snapshot lu)
        | None -> None)
  in
  Basis.make ~ncols:st.p.ncols ~nrows:st.m ~basis:st.basis ~stat:st.stat ~factor

(* How stale a snapshot's factor may be — in appended etas — before a
   restore pays for a fresh factorization.  Comparable to [eta_limit],
   so warm-started chains see no worse drift than a long cold solve. *)
let refresh_age = eta_limit

let init_state ~dense p ~lb:wlb ~ub:wub =
  let m = Array.length p.rows in
  let n = p.ncols in
  let ntot = n + (2 * m) in
  let cols = build_cols p m in
  let lb = Array.make ntot 0. and ub = Array.make ntot infinity in
  Array.blit wlb 0 lb 0 n;
  Array.blit wub 0 ub 0 n;
  (* Slack bounds encode the row sense: a.x + s = b. *)
  for i = 0 to m - 1 do
    let s = n + i in
    cols.(s) <- [| (i, 1.0) |];
    match p.senses.(i) with
    | Model.Le ->
        lb.(s) <- 0.;
        ub.(s) <- infinity
    | Model.Ge ->
        lb.(s) <- neg_infinity;
        ub.(s) <- 0.
    | Model.Eq ->
        lb.(s) <- 0.;
        ub.(s) <- 0.
  done;
  let stat = Array.make ntot At_lower in
  for j = 0 to n - 1 do
    stat.(j) <-
      (if Float.is_finite lb.(j) then At_lower
       else if Float.is_finite ub.(j) then At_upper
       else Free_zero)
  done;
  (* Row residuals under the nonbasic assignment. *)
  let resid = Array.copy p.rhs in
  for j = 0 to n - 1 do
    let v =
      match stat.(j) with
      | At_lower -> lb.(j)
      | At_upper -> ub.(j)
      | Free_zero | Basic -> 0.
    in
    if v <> 0. then Array.iter (fun (i, a) -> resid.(i) <- resid.(i) -. (a *. v)) cols.(j)
  done;
  let basis = Array.make m 0 in
  let diag = Array.make m 1.0 in
  let xb = Array.make m 0. in
  let cost = Array.make ntot 0. in
  for i = 0 to m - 1 do
    let s = n + i and art = n + m + i in
    let r = resid.(i) in
    if r >= lb.(s) -. 1e-12 && r <= ub.(s) +. 1e-12 then begin
      (* Slack basic at the residual value; artificial unused. *)
      basis.(i) <- s;
      stat.(s) <- Basic;
      xb.(i) <- r;
      cols.(art) <- [| (i, 1.0) |];
      ub.(art) <- 0.
    end
    else begin
      (* Slack pinned at its nearest bound (0 in all senses); an
         artificial with sign g carries the residual: x_art = |r| >= 0. *)
      let g = if r >= 0. then 1.0 else -1.0 in
      cols.(art) <- [| (i, g) |];
      stat.(s) <- At_lower;
      (match p.senses.(i) with
      | Model.Ge -> stat.(s) <- At_upper
      | Model.Le | Model.Eq -> ());
      basis.(i) <- art;
      stat.(art) <- Basic;
      xb.(i) <- Float.abs r;
      diag.(i) <- g;
      cost.(art) <- 1.0 (* phase-1 cost *)
    end
  done;
  (* The starting basis matrix is the ±1 diagonal [diag]; both kernels
     represent it directly (the sparse factorization of a signed
     diagonal cannot fail, but fall back to the dense inverse if it
     somehow does rather than crash). *)
  let kern =
    if dense then
      Dense (Array.init m (fun i -> Array.init m (fun k -> if i = k then diag.(i) else 0.)))
    else
      match Lu.factorize ~m (fun i -> cols.(basis.(i))) with
      | Some lu -> Sparse lu
      | None ->
          Dense (Array.init m (fun i -> Array.init m (fun k -> if i = k then diag.(i) else 0.)))
  in
  { p; m; ntot; cols; lb; ub; stat; basis; dense; kern; xb; cost;
    wy = Array.make m 0.; ww = Array.make m 0.; wrho = Array.make m 0.;
    wres = Array.make m 0.;
    niter = 0; degen_count = 0; bland = false; price_ptr = 0; age = 0 }

(* Rebuild a solver state from a prior optimal basis under new working
   bounds.  The column layout matches [init_state]; artificial columns
   are sealed at zero with a +1 sign (any nonsingular sign choice
   represents the same sealed variable, and a basic artificial must sit
   at zero anyway — the dual loop repairs it if the new bounds moved
   it).  The snapshot's stored factor is reopened verbatim — the basis
   matrix depends only on which columns are basic, not on bounds — so a
   restore normally costs one sparse FTRAN of the right-hand side; only
   a snapshot whose eta file outgrew [refresh_age], or one without a
   factor, pays for a fresh factorization.  Returns [None] when such a
   refresh finds the inherited basis matrix singular. *)
let warm_state ~dense p ~lb:wlb ~ub:wub (b : Basis.t) =
  let m = Array.length p.rows in
  let n = p.ncols in
  let ntot = n + (2 * m) in
  let cols = build_cols p m in
  let lb = Array.make ntot 0. and ub = Array.make ntot infinity in
  Array.blit wlb 0 lb 0 n;
  Array.blit wub 0 ub 0 n;
  for i = 0 to m - 1 do
    let s = n + i in
    cols.(s) <- [| (i, 1.0) |];
    (match p.senses.(i) with
    | Model.Le ->
        lb.(s) <- 0.;
        ub.(s) <- infinity
    | Model.Ge ->
        lb.(s) <- neg_infinity;
        ub.(s) <- 0.
    | Model.Eq ->
        lb.(s) <- 0.;
        ub.(s) <- 0.);
    let art = n + m + i in
    cols.(art) <- [| (i, 1.0) |];
    lb.(art) <- 0.;
    ub.(art) <- 0.
  done;
  let stat = Array.copy b.Basis.stat in
  (* Nonbasic statuses must reference bounds that exist under the new
     box; reconcile the few that a bound change invalidated. *)
  for j = 0 to ntot - 1 do
    match stat.(j) with
    | Basic -> ()
    | At_lower when not (Float.is_finite lb.(j)) ->
        stat.(j) <- (if Float.is_finite ub.(j) then At_upper else Free_zero)
    | At_upper when not (Float.is_finite ub.(j)) ->
        stat.(j) <- (if Float.is_finite lb.(j) then At_lower else Free_zero)
    | Free_zero when lb.(j) > 0. || ub.(j) < 0. ->
        stat.(j) <- (if lb.(j) > 0. then At_lower else At_upper)
    | At_lower | At_upper | Free_zero -> ()
  done;
  let cost = Array.make ntot 0. in
  Array.blit p.obj 0 cost 0 n;
  let st =
    { p; m; ntot; cols; lb; ub; stat;
      basis = Array.copy b.Basis.basis;
      dense; kern = Dense [||];
      xb = Array.make m 0.; cost;
      wy = Array.make m 0.; ww = Array.make m 0.; wrho = Array.make m 0.;
      wres = Array.make m 0.;
      niter = 0; degen_count = 0; bland = false; price_ptr = 0;
      age = Basis.age b }
  in
  let restored =
    st.age <= refresh_age
    &&
    match b.Basis.factor with
    | Some f when Lu.factor_dim f = m ->
        if dense then begin
          (* Ablation mode: densify the stored factor column by column
             (column r of B⁻¹ is the FTRAN image of e_r). *)
          let lu = Lu.of_factor f in
          let binv = Array.init m (fun _ -> Array.make m 0.) in
          let x = Array.make m 0. in
          for r = 0 to m - 1 do
            Array.fill x 0 m 0.;
            x.(r) <- 1.0;
            Lu.ftran lu x;
            for i = 0 to m - 1 do
              binv.(i).(r) <- x.(i)
            done
          done;
          st.kern <- Dense binv;
          true
        end
        else begin
          st.kern <- Sparse (Lu.of_factor f);
          true
        end
    | Some _ | None -> false
  in
  if restored then begin
    recompute_xb st;
    Some st
  end
  else if refactorize st then Some st
  else None

type dual_outcome = Dual_feasible | Dual_proven_infeasible | Dual_stalled

(* Bounded-variable dual simplex: starting from a (near) dual-feasible
   basis whose basic values may violate the new bounds, drive every
   basic variable back inside its bounds while keeping the reduced
   costs signed.  Each round picks the most violated basic variable,
   prices the candidate entering columns against row r of B^{-1}
   (one BTRAN), and pivots on the smallest dual ratio |d_j / alpha_j|.
   Failure of the ratio test is a primal infeasibility certificate: the
   violated row proves no setting of the nonbasic variables can pull the
   basic one back inside its bounds. *)
let dual_simplex st ~max_pivots ~feas_tol ~deadline =
  let rec loop pivots =
    if pivots >= max_pivots then Dual_stalled
    else if
      Float.is_finite deadline
      && pivots land 31 = 0
      && Clock.now () > deadline
    then Dual_stalled
    else begin
      (* Most violated basic variable. *)
      let r = ref (-1) and viol = ref feas_tol and high = ref false in
      for i = 0 to st.m - 1 do
        let k = st.basis.(i) in
        let below = st.lb.(k) -. st.xb.(i) in
        let above = st.xb.(i) -. st.ub.(k) in
        if below > !viol then begin
          r := i;
          viol := below;
          high := false
        end;
        if above > !viol then begin
          r := i;
          viol := above;
          high := true
        end
      done;
      if !r < 0 then Dual_feasible
      else begin
        let r = !r and high = !high in
        let k = st.basis.(r) in
        binv_row st r;
        let rho = st.wrho in
        compute_duals st;
        let y = st.wy in
        (* s * alpha_j > 0 means raising x_j moves x_k toward the
           violated bound, so nonbasics at lower (free to rise) need
           s*alpha > 0 and nonbasics at upper need s*alpha < 0. *)
        let s = if high then 1.0 else -1.0 in
        let enter = ref (-1) and best_ratio = ref infinity and enter_alpha = ref 0. in
        for j = 0 to st.ntot - 1 do
          if st.stat.(j) <> Basic && st.lb.(j) < st.ub.(j) then begin
            let a = ref 0. in
            Array.iter (fun (i, c) -> a := !a +. (rho.(i) *. c)) st.cols.(j);
            let sa = s *. !a in
            let eligible =
              match st.stat.(j) with
              | At_lower -> sa > pivot_tol
              | At_upper -> sa < -.pivot_tol
              | Free_zero -> Float.abs sa > pivot_tol
              | Basic -> false
            in
            if eligible then begin
              let ratio = Float.max 0. (reduced_cost st y j /. sa) in
              if
                ratio < !best_ratio -. 1e-12
                || (ratio < !best_ratio +. 1e-12 && Float.abs !a > Float.abs !enter_alpha)
              then begin
                enter := j;
                best_ratio := ratio;
                enter_alpha := !a
              end
            end
          end
        done;
        if !enter < 0 then Dual_proven_infeasible
        else begin
          let j = !enter in
          ftran_col st j;
          let w = st.ww in
          let alpha = w.(r) in
          if Float.abs alpha < pivot_tol then Dual_stalled
          else begin
            let bound = if high then st.ub.(k) else st.lb.(k) in
            let delta = (st.xb.(r) -. bound) /. alpha in
            st.niter <- st.niter + 1;
            apply_step st j 1.0 w delta;
            pivot st j 1.0 w r delta ~to_upper:high;
            if st.niter mod 256 = 0 then ignore (refactorize st);
            loop (pivots + 1)
          end
        end
      end
    end
  in
  loop 0

(* Run simplex iterations under the current [st.cost] until no entering
   column is found.  Returns [Ok ()] at phase optimality. *)
let optimize st ~max_iterations ~dual_tol ~deadline =
  let refactor_period = 512 in
  let rec loop () =
    if st.niter >= max_iterations then Error Status.Lp_iteration_limit
    else if
      Float.is_finite deadline
      && st.niter land 63 = 0
      && Clock.now () > deadline
    then Error Status.Lp_iteration_limit
    else
      match price st ~dual_tol with
      | None -> Ok ()
      | Some (j, d) -> (
          let sigma =
            match st.stat.(j) with
            | At_lower -> 1.0
            | At_upper -> -1.0
            | Free_zero -> if d < 0. then 1.0 else -1.0
            | Basic -> assert false
          in
          st.niter <- st.niter + 1;
          if st.niter mod refactor_period = 0 then ignore (refactorize st);
          ftran_col st j;
          let w = st.ww in
          match ratio_test st j sigma w with
          | Unbounded -> Error Status.Lp_unbounded
          | Bound_flip t ->
              apply_step st j sigma w t;
              st.stat.(j) <- (match st.stat.(j) with At_lower -> At_upper | _ -> At_lower);
              st.degen_count <- 0;
              st.bland <- false;
              loop ()
          | Leave { row; t; to_upper } ->
              if t <= 1e-10 then begin
                st.degen_count <- st.degen_count + 1;
                if st.degen_count > 200 then st.bland <- true
              end
              else begin
                st.degen_count <- 0;
                st.bland <- false
              end;
              apply_step st j sigma w t;
              pivot st j sigma w row t ~to_upper;
              loop ())
  in
  loop ()

let extract_primal st =
  let n = st.p.ncols in
  let x = Array.make n 0. in
  for j = 0 to n - 1 do
    if st.stat.(j) <> Basic then x.(j) <- nb_value st j
  done;
  for i = 0 to st.m - 1 do
    let k = st.basis.(i) in
    if k < n then x.(k) <- st.xb.(i)
  done;
  x

let true_objective st x =
  let acc = ref st.p.obj_const in
  for j = 0 to st.p.ncols - 1 do
    acc := !acc +. (st.p.obj.(j) *. x.(j))
  done;
  !acc

let cold_solve ~dense ~max_iterations ~feas_tol ~deadline p ~lb ~ub =
  let m = Array.length p.rows in
  let st = init_state ~dense p ~lb ~ub in
  (* Phase 1: minimize total artificial value (cost set by init). *)
  let phase1_needed = ref false in
  for i = 0 to m - 1 do
    if st.basis.(i) >= p.ncols + m then phase1_needed := true
  done;
  let phase1 =
    if !phase1_needed then optimize st ~max_iterations ~dual_tol:1e-9 ~deadline
    else Ok ()
  in
  match phase1 with
  | Error s ->
      { status = s; objective = infinity; primal = extract_primal st;
        iterations = st.niter; basis = None; warm = Cold }
  | Ok () ->
      let infeas = current_objective st in
      if !phase1_needed && infeas > feas_tol *. 10. then
        { status = Status.Lp_infeasible; objective = infinity;
          primal = extract_primal st; iterations = st.niter; basis = None; warm = Cold }
      else begin
        (* Seal artificials and install the phase-2 cost. *)
        for i = 0 to m - 1 do
          let art = p.ncols + m + i in
          st.ub.(art) <- 0.;
          st.lb.(art) <- 0.;
          st.cost.(art) <- 0.
        done;
        Array.blit p.obj 0 st.cost 0 p.ncols;
        st.bland <- false;
        st.degen_count <- 0;
        match optimize st ~max_iterations ~dual_tol:1e-7 ~deadline with
        | Error s ->
            let x = extract_primal st in
            let objective = if s = Status.Lp_iteration_limit then true_objective st x else neg_infinity in
            { status = s; objective; primal = x; iterations = st.niter; basis = None; warm = Cold }
        | Ok () ->
            (* Only hand out a basis that re-verified under a fresh
               factorization: warm restarts, cut separation and
               reduced-cost fixing all trust the snapshot's factor
               blindly, and a near-singular terminal basis would feed
               them garbage.  Losing the snapshot merely costs the
               children a cold solve. *)
            let fresh = refactorize st in
            let x = extract_primal st in
            { status = Status.Lp_optimal; objective = true_objective st x;
              primal = x; iterations = st.niter;
              basis = (if fresh then Some (snapshot st) else None); warm = Cold }
      end

let basic_within_bounds st tol =
  let ok = ref true in
  for i = 0 to st.m - 1 do
    let k = st.basis.(i) in
    if st.xb.(i) < st.lb.(k) -. tol || st.xb.(i) > st.ub.(k) +. tol then ok := false
  done;
  !ok

(* Warm-start attempt: restore the parent basis, repair primal
   feasibility with dual pivots, then finish with (usually zero) primal
   iterations.  [None] means the caller must fall back to a cold solve:
   the basis was stale or singular, or dual pivoting stalled. *)
let try_warm ~dense ~max_iterations ~feas_tol ~deadline p ~lb ~ub b =
  let m = Array.length p.rows in
  if not (Basis.compatible b ~ncols:p.ncols ~nrows:m && Basis.well_formed b) then None
  else
    match warm_state ~dense p ~lb ~ub b with
    | None -> None
    | Some st -> (
        match dual_simplex st ~max_pivots:(100 + (2 * m)) ~feas_tol ~deadline with
        | Dual_stalled -> None
        | Dual_proven_infeasible ->
            Some
              { status = Status.Lp_infeasible; objective = infinity;
                primal = extract_primal st; iterations = st.niter;
                basis = None; warm = Warm }
        | Dual_feasible -> (
            match optimize st ~max_iterations ~dual_tol:1e-7 ~deadline with
            | Error Status.Lp_unbounded ->
                Some
                  { status = Status.Lp_unbounded; objective = neg_infinity;
                    primal = extract_primal st; iterations = st.niter;
                    basis = None; warm = Warm }
            | Error s ->
                let x = extract_primal st in
                Some
                  { status = s; objective = true_objective st x; primal = x;
                    iterations = st.niter; basis = None; warm = Warm }
            | Ok () ->
                (* Final hygiene: a warm basis whose basic values drift
                   out of primal feasibility is not trusted.  Drift is
                   bounded by [refresh_age], so no unconditional O(m³)
                   refactorization is needed here. *)
                if not (basic_within_bounds st (feas_tol *. 100.)) then None
                else begin
                  let x = extract_primal st in
                  Some
                    { status = Status.Lp_optimal; objective = true_objective st x;
                      primal = x; iterations = st.niter;
                      basis = Some (snapshot st); warm = Warm }
                end))

let solve ?basis ?max_iterations ?(feas_tol = 1e-7) ?(deadline = infinity)
    ?(dense = false) p ~lb ~ub =
  let m = Array.length p.rows in
  (* Reject inverted working bounds up-front (branch & bound can create
     them); an empty box is infeasible. *)
  let inverted = ref false in
  for j = 0 to p.ncols - 1 do
    if lb.(j) > ub.(j) +. 1e-12 then inverted := true
  done;
  if !inverted then
    { status = Status.Lp_infeasible; objective = infinity;
      primal = Array.make p.ncols 0.; iterations = 0; basis = None; warm = Cold }
  else begin
    let max_iterations =
      match max_iterations with
      | Some k -> k
      | None -> 50_000 + (50 * (m + p.ncols))
    in
    match basis with
    | None -> cold_solve ~dense ~max_iterations ~feas_tol ~deadline p ~lb ~ub
    | Some b -> (
        match try_warm ~dense ~max_iterations ~feas_tol ~deadline p ~lb ~ub b with
        | Some r -> r
        | None ->
            { (cold_solve ~dense ~max_iterations ~feas_tol ~deadline p ~lb ~ub) with
              warm = Warm_fallback })
  end

(* Append rows to a problem snapshot (used by the cut loop).  The
   existing arrays are shared structurally; only the row-indexed arrays
   are rebuilt. *)
let add_rows p extra =
  match extra with
  | [] -> p
  | _ ->
      let rows = Array.of_list (List.map (fun (r, _, _) -> r) extra) in
      let senses = Array.of_list (List.map (fun (_, s, _) -> s) extra) in
      let rhs = Array.of_list (List.map (fun (_, _, b) -> b) extra) in
      {
        p with
        rows = Array.append p.rows rows;
        senses = Array.append p.senses senses;
        rhs = Array.append p.rhs rhs;
      }

type tableau = {
  t_ncols : int;
  t_nrows : int;
  t_basic : int array;
  t_xb : float array;
  t_stat : vstat array;
  t_lb : float array;
  t_ub : float array;
  t_row : int -> (int * float) array;
}

(* Simplex tableau access for cut separation: rebuild the solver state
   from an optimal basis (exactly as a warm start would) and expose the
   basic values plus on-demand tableau rows alpha = B^{-1} A restricted
   to the nonbasic, non-fixed columns.  Fixed columns (sealed
   artificials, presolve-fixed structurals) contribute nothing to a cut
   because their shifted value is identically zero. *)
let tableau ?(dense = false) p ~lb ~ub b =
  if not (Basis.compatible b ~ncols:p.ncols ~nrows:(Array.length p.rows) && Basis.well_formed b)
  then None
  else
    match warm_state ~dense p ~lb ~ub b with
    | None -> None
    | Some st when not (st.age = 0 || refactorize st) ->
        (* Cut coefficients are linear in B^{-1}; a factor that cannot
           be re-verified by factorization would yield invalid cuts. *)
        None
    | Some st ->
        let row i =
          binv_row st i;
          let rho = st.wrho in
          let out = ref [] in
          for j = st.ntot - 1 downto 0 do
            if st.stat.(j) <> Basic && st.lb.(j) < st.ub.(j) then begin
              let a = ref 0. in
              Array.iter (fun (r, c) -> a := !a +. (rho.(r) *. c)) st.cols.(j);
              if Float.abs !a > 1e-9 then out := (j, !a) :: !out
            end
          done;
          Array.of_list !out
        in
        Some
          {
            t_ncols = st.p.ncols;
            t_nrows = st.m;
            t_basic = Array.copy st.basis;
            t_xb = Array.copy st.xb;
            t_stat = Array.copy st.stat;
            t_lb = Array.copy st.lb;
            t_ub = Array.copy st.ub;
            t_row = row;
          }

(* Phase-2 reduced costs of the structural columns under an optimal
   basis: d = c - c_B B^{-1} A, with y = B^{-T} c_B obtained by one
   sparse BTRAN against the snapshot's factor.  A sealed artificial in
   the basis carries zero cost, so its (unknown) column sign cannot
   perturb y.  Used for reduced-cost fixing in branch & bound once an
   incumbent exists. *)
let reduced_costs p (b : Basis.t) =
  let m = Array.length p.rows in
  let n = p.ncols in
  if not (Basis.compatible b ~ncols:n ~nrows:m) then None
  else begin
    let lu =
      match b.Basis.factor with
      | Some f -> Some (Lu.of_factor f)
      | None ->
          let cols = build_cols p m in
          Lu.factorize ~m (fun i ->
              let k = b.Basis.basis.(i) in
              if k < n then cols.(k)
              else if k < n + m then [| (k - n, 1.0) |]
              else [| (k - n - m, 1.0) |])
    in
    match lu with
    | None -> None
    | Some lu ->
        let y = Array.make m 0. in
        for i = 0 to m - 1 do
          let k = b.Basis.basis.(i) in
          if k < n then y.(i) <- p.obj.(k)
        done;
        Lu.btran lu y;
        let d = Array.copy p.obj in
        Array.iteri
          (fun i row ->
            if y.(i) <> 0. then
              Array.iter (fun (j, a) -> d.(j) <- d.(j) -. (y.(i) *. a)) row)
          p.rows;
        Some d
  end

let solve_model ?max_iterations m =
  let p = of_model m in
  let n = p.ncols in
  let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
  let r = solve ?max_iterations p ~lb ~ub in
  match fst (Model.objective m) with
  | Model.Minimize -> r
  | Model.Maximize ->
      let objective =
        match r.status with
        | Status.Lp_unbounded -> infinity
        | Status.Lp_infeasible -> neg_infinity
        | Status.Lp_optimal | Status.Lp_iteration_limit -> -.r.objective
      in
      { r with objective }
