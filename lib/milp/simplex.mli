(** Bounded-variable primal simplex for linear programs.

    Solves [min c^T x  s.t.  A x {<=,>=,=} b,  l <= x <= u] using the
    two-phase method: artificial variables give an identity starting
    basis; phase 1 minimizes total artificial value, phase 2 the true
    objective.  The basis inverse is kept explicitly (dense) and updated
    by elementary row operations at each pivot; Dantzig pricing with an
    automatic switch to Bland's rule under prolonged degeneracy
    guarantees termination.

    Variable bounds may be infinite.  Maximization is handled by the
    caller negating the objective (see {!Branch_bound} and {!solve_model}).

    The solver works on an immutable {!problem} snapshot so that branch &
    bound can re-solve with modified bounds without rebuilding rows.

    Re-solves can additionally be warm started from a prior optimal
    {!Basis.t}: the basis is refactorized under the new bounds and primal
    feasibility is restored by a bounded-variable {e dual} simplex loop —
    a handful of pivots when only a few bounds changed — before the
    primal phase confirms optimality.  A stale, singular, or stalling
    basis silently falls back to the cold two-phase path. *)

type problem = {
  ncols : int;  (** Number of structural variables. *)
  rows : (int * float) array array;  (** Sparse rows: [(col, coef)] lists. *)
  senses : Model.sense array;
  rhs : float array;
  obj : float array;  (** Minimization coefficients, length [ncols]. *)
  obj_const : float;
}

type warm_kind =
  | Cold  (** No basis given (or an empty box): two-phase solve. *)
  | Warm  (** The given basis was restored and dual-repaired. *)
  | Warm_fallback  (** The given basis was unusable; cold solve ran. *)

type result = {
  status : Status.lp_status;
  objective : float;  (** Meaningful when [status = Lp_optimal]. *)
  primal : float array;  (** Length [ncols]; variable values. *)
  iterations : int;
  basis : Basis.t option;
      (** Optimal basis snapshot, reusable as [?basis] for a re-solve
          after bound changes; [None] unless [status = Lp_optimal]. *)
  warm : warm_kind;  (** Which path produced the result. *)
}

val of_model : Model.t -> problem
(** Snapshot a model's rows into solver form.  Maximization objectives
    are negated (callers must negate reported objectives back). *)

val solve :
  ?basis:Basis.t ->
  ?max_iterations:int ->
  ?feas_tol:float ->
  ?deadline:float ->
  problem ->
  lb:float array ->
  ub:float array ->
  result
(** Solve the LP relaxation with the given working bounds (arrays of
    length [ncols]; entries may be [neg_infinity]/[infinity]).
    [basis], when given, must come from a prior solve of the {e same}
    [problem] (any bounds); the solver then warm starts from it and
    falls back to the cold path automatically if it cannot (the result's
    [warm] field says which happened).
    [max_iterations] defaults to [50_000 + 50 * (rows + cols)].
    [feas_tol] (default [1e-7]) is the primal feasibility tolerance.
    [deadline] is an absolute [Unix.gettimeofday] instant after which
    the solve aborts with [Lp_iteration_limit] (checked every few
    iterations) — branch & bound uses it to make its wall-clock limit
    hold even when a single LP is huge. *)

val solve_model : ?max_iterations:int -> Model.t -> result
(** Convenience wrapper: snapshot the model, use its declared bounds and
    solve, converting the objective sign back for maximization models.
    Integrality is ignored (LP relaxation). *)
