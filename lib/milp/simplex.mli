(** Bounded-variable primal simplex for linear programs.

    Solves [min c^T x  s.t.  A x {<=,>=,=} b,  l <= x <= u] using the
    two-phase method: artificial variables give an identity starting
    basis; phase 1 minimizes total artificial value, phase 2 the true
    objective.  The basis is maintained as a sparse LU factorization
    with product-form eta updates ({!Lu}): each iteration prices via
    one sparse BTRAN, forms the entering column via one sparse FTRAN,
    and appends one eta per pivot, refactorizing once the eta file hits
    its stability budget.

    Pricing defaults to devex (reference-framework weights approximating
    steepest edge, maintained reduced costs updated from the pivot row,
    periodic reference resets), with the PR5 partial candidate-list
    Dantzig scan kept behind [~pricing:Dantzig] as an ablation.  Either
    way an automatic switch to Bland's full lowest-index rule under
    prolonged degeneracy guarantees termination.  The primal ratio test
    defaults to the Harris two-pass test (tolerance-relaxed first pass,
    max-|pivot| second pass) with a bound-flipping (long-step) ratio
    test in the dual repair loop; [~harris:false] restores the classic
    smallest-ratio tests.  The pre-PR dense explicit inverse survives
    behind [?dense] as an ablation baseline.

    Hot working storage (bounds, statuses, scratch vectors, the CSC
    image of the constraint matrix) lives in a {!workspace} arena that
    callers may reuse across re-solves — branch & bound keeps one per
    worker domain — eliminating per-solve allocation on node re-solves.

    Variable bounds may be infinite.  Maximization is handled by the
    caller negating the objective (see {!Branch_bound} and {!solve_model}).

    The solver works on an immutable {!problem} snapshot so that branch &
    bound can re-solve with modified bounds without rebuilding rows.

    Re-solves can additionally be warm started from a prior optimal
    {!Basis.t}: the snapshot's factor is reopened under the new bounds
    and primal feasibility is restored by a bounded-variable {e dual}
    simplex loop — a handful of pivots when only a few bounds changed —
    before the primal phase confirms optimality.  A stale, singular, or
    stalling basis silently falls back to the cold two-phase path. *)

type problem = {
  ncols : int;  (** Number of structural variables. *)
  rows : (int * float) array array;  (** Sparse rows: [(col, coef)] lists. *)
  senses : Model.sense array;
  rhs : float array;
  obj : float array;  (** Minimization coefficients, length [ncols]. *)
  obj_const : float;
}

type pricing =
  | Dantzig  (** Partial candidate-list largest-reduced-cost scan (PR5). *)
  | Devex  (** Reference-framework devex weights (default). *)

type workspace
(** Reusable per-solve arena: the CSC image of the constraint matrix
    plus every working array of the solver state.  A workspace may be
    used by one solve at a time and must not be shared across domains;
    reusing one across re-solves (same or different problems — buffers
    resize on shape change) eliminates per-solve allocation. *)

val create_workspace : unit -> workspace
(** A fresh, empty workspace.  Cheap; buffers grow on first use. *)

type warm_kind =
  | Cold  (** No basis given (or an empty box): two-phase solve. *)
  | Warm  (** The given basis was restored and dual-repaired. *)
  | Warm_fallback  (** The given basis was unusable; cold solve ran. *)

type result = {
  status : Status.lp_status;
  objective : float;  (** Meaningful when [status = Lp_optimal]. *)
  primal : float array;  (** Length [ncols]; variable values. *)
  iterations : int;
  basis : Basis.t option;
      (** Optimal basis snapshot, reusable as [?basis] for a re-solve
          after bound changes; [None] unless [status = Lp_optimal]. *)
  warm : warm_kind;  (** Which path produced the result. *)
}

val of_model : Model.t -> problem
(** Snapshot a model's rows into solver form.  Maximization objectives
    are negated (callers must negate reported objectives back). *)

val solve :
  ?basis:Basis.t ->
  ?max_iterations:int ->
  ?feas_tol:float ->
  ?deadline:float ->
  ?dense:bool ->
  ?pricing:pricing ->
  ?harris:bool ->
  ?ws:workspace ->
  problem ->
  lb:float array ->
  ub:float array ->
  result
(** Solve the LP relaxation with the given working bounds (arrays of
    length [ncols]; entries may be [neg_infinity]/[infinity]).
    [basis], when given, must come from a prior solve of the {e same}
    [problem] (any bounds); the solver then warm starts from it and
    falls back to the cold path automatically if it cannot (the result's
    [warm] field says which happened).
    [max_iterations] defaults to [50_000 + 50 * (rows + cols)].
    [feas_tol] (default [1e-7]) is the primal feasibility tolerance.
    [deadline] is an absolute {!Clock.now} instant after which
    the solve aborts with [Lp_iteration_limit] (checked every few
    iterations) — branch & bound uses it to make its wall-clock limit
    hold even when a single LP is huge.
    [dense] (default [false]) selects the pre-PR dense explicit-inverse
    kernel instead of the sparse LU one — an ablation baseline
    ([--dense-basis]); results agree to solver tolerances either way.
    [pricing] (default [Devex]) selects the entering-column rule;
    [harris] (default [true]) enables the Harris two-pass primal ratio
    test and the bound-flipping dual ratio test.  All combinations agree
    on the optimum to solver tolerances; they differ in iteration count
    and numerical robustness.
    [ws], when given, supplies the working-storage arena ({!workspace});
    when absent a private one is allocated.  Pass the same workspace to
    successive re-solves to eliminate per-solve allocation. *)

val add_rows : problem -> ((int * float) array * Model.sense * float) list -> problem
(** [add_rows p extra] appends constraint rows (sparse row, sense, rhs)
    to the snapshot.  Bases from the original problem are {e not}
    compatible with the grown one — grow them alongside with
    {!Basis.append_row} (one call per appended row, in order) to keep
    warm starting across cutting-plane rounds. *)

type tableau = {
  t_ncols : int;  (** Structural columns. *)
  t_nrows : int;  (** Rows. *)
  t_basic : int array;  (** Column basic in each row. *)
  t_xb : float array;  (** Value of the basic variable per row. *)
  t_stat : Basis.vstat array;  (** Status per column, length [ncols + 2*nrows]. *)
  t_lb : float array;  (** Working bounds per column (slacks included). *)
  t_ub : float array;
  t_row : int -> (int * float) array;
      (** [t_row i] is the tableau row [alpha = B⁻¹A] of basis position
          [i], restricted to nonbasic columns that are not fixed
          ([lb < ub]); entries below [1e-9] are dropped.  Column indices
          cover structurals [[0,n)] and slacks [[n,n+m)] (artificials are
          sealed, hence fixed, hence absent).  One sparse BTRAN plus a
          column sweep per call. *)
}

val tableau :
  ?dense:bool -> problem -> lb:float array -> ub:float array -> Basis.t -> tableau option
(** Tableau-row access for cut separation: restores the state an optimal
    basis describes (the same path a warm start takes) and exposes basic
    values plus on-demand rows of [B⁻¹A].  [None] if the basis is stale,
    malformed, or singular.  [dense] selects the ablation kernel, as in
    {!solve}. *)

val reduced_costs : problem -> Basis.t -> float array option
(** Phase-2 reduced costs [c - c_B B⁻¹ A] of the structural columns
    under an optimal basis — one sparse BTRAN against the snapshot's
    factor — the inputs to reduced-cost fixing.  [None] if the basis
    shape does not match the problem or its matrix cannot be
    factorized. *)

val solve_model : ?max_iterations:int -> Model.t -> result
(** Convenience wrapper: snapshot the model, use its declared bounds and
    solve, converting the objective sign back for maximization models.
    Integrality is ignored (LP relaxation). *)
