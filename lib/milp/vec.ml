type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let check v i op =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of range [0, %d)" op i v.len)

let get v i =
  check v i "get";
  v.data.(i)

let set v i x =
  check v i "set";
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let ncap = if cap = 0 then 8 else 2 * cap in
  let ndata = Array.make ncap x in
  Array.blit v.data 0 ndata 0 v.len;
  v.data <- ndata

let add_last v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let iter f v = iteri (fun _ x -> f x) v

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

(* Unboxed float variant: same growth discipline, but backed by a flat
   [floatarray] so elements are stored inline (no per-element boxing)
   and appends never allocate beyond the doubling copies.  Used by the
   measurement paths that accumulate per-solve float samples. *)
module Float = struct
  module FA = Stdlib.Float.Array

  type t = { mutable data : floatarray; mutable len : int }

  let create () = { data = FA.create 0; len = 0 }

  let length v = v.len

  let check v i op =
    if i < 0 || i >= v.len then
      invalid_arg
        (Printf.sprintf "Vec.Float.%s: index %d out of range [0, %d)" op i v.len)

  let get v i =
    check v i "get";
    FA.get v.data i

  let set v i x =
    check v i "set";
    FA.set v.data i x

  let grow v =
    let cap = FA.length v.data in
    let ncap = if cap = 0 then 8 else 2 * cap in
    let ndata = FA.make ncap 0. in
    FA.blit v.data 0 ndata 0 v.len;
    v.data <- ndata

  let add_last v x =
    if v.len = FA.length v.data then grow v;
    FA.set v.data v.len x;
    v.len <- v.len + 1

  let clear v = v.len <- 0

  let to_array v = Array.init v.len (FA.get v.data)

  let of_array a =
    let len = Array.length a in
    let data = FA.init len (Array.get a) in
    { data; len }

  let iteri f v =
    for i = 0 to v.len - 1 do
      f i (FA.get v.data i)
    done

  let iter f v = iteri (fun _ x -> f x) v

  let fold_left f init v =
    let acc = ref init in
    for i = 0 to v.len - 1 do
      acc := f !acc (FA.get v.data i)
    done;
    !acc
end
