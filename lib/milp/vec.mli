(** Minimal growable vector (OCaml 5.1 has no [Dynarray]). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-range index. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-range index. *)

val add_last : 'a t -> 'a -> unit

val to_array : 'a t -> 'a array

val of_array : 'a array -> 'a t

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** Unboxed growable float vector backed by a flat [floatarray]:
    elements are stored inline, so appending [n] floats allocates
    O(n) words total (the doubling copies) rather than one box per
    element.  Mirrors the polymorphic API plus {!Float.clear} for
    buffer reuse. *)
module Float : sig
  type t

  val create : unit -> t

  val length : t -> int

  val get : t -> int -> float
  (** @raise Invalid_argument on out-of-range index. *)

  val set : t -> int -> float -> unit
  (** @raise Invalid_argument on out-of-range index. *)

  val add_last : t -> float -> unit

  val clear : t -> unit
  (** Reset the length to zero, keeping capacity for reuse. *)

  val to_array : t -> float array

  val of_array : float array -> t

  val iteri : (int -> float -> unit) -> t -> unit

  val iter : (float -> unit) -> t -> unit

  val fold_left : ('acc -> float -> 'acc) -> 'acc -> t -> 'acc
end
