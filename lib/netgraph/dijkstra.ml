let no_node _ = false

let no_edge _ _ = false

(* Textbook lazy-deletion Dijkstra on a float-keyed binary heap.  The
   heap comes from the milp library's Pqueue twin; to keep netgraph
   dependency-free we re-implement the few lines needed. *)
module Heap = struct
  type t = { mutable keys : float array; mutable vals : int array; mutable len : int }

  let create () = { keys = [||]; vals = [||]; len = 0 }

  let push h k v =
    if h.len = Array.length h.keys then begin
      let cap = if h.len = 0 then 16 else 2 * h.len in
      let nk = Array.make cap 0. and nv = Array.make cap 0 in
      Array.blit h.keys 0 nk 0 h.len;
      Array.blit h.vals 0 nv 0 h.len;
      h.keys <- nk;
      h.vals <- nv
    end;
    let i = ref h.len in
    h.keys.(!i) <- k;
    h.vals.(!i) <- v;
    h.len <- h.len + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if h.keys.(p) > h.keys.(!i) then begin
        let tk = h.keys.(p) and tv = h.vals.(p) in
        h.keys.(p) <- h.keys.(!i);
        h.vals.(p) <- h.vals.(!i);
        h.keys.(!i) <- tk;
        h.vals.(!i) <- tv;
        i := p
      end
      else continue := false
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let k = h.keys.(0) and v = h.vals.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.keys.(0) <- h.keys.(h.len);
        h.vals.(0) <- h.vals.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < h.len && h.keys.(l) < h.keys.(!s) then s := l;
          if r < h.len && h.keys.(r) < h.keys.(!s) then s := r;
          if !s <> !i then begin
            let tk = h.keys.(!s) and tv = h.vals.(!s) in
            h.keys.(!s) <- h.keys.(!i);
            h.vals.(!s) <- h.vals.(!i);
            h.keys.(!i) <- tk;
            h.vals.(!i) <- tv;
            i := !s
          end
          else continue := false
        done
      end;
      Some (k, v)
    end
end

let search ?(banned_node = no_node) ?(banned_edge = no_edge) g ~src ~stop_at =
  let n = Digraph.nnodes g in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  (* Node ids are >= 0, so -1 is a safe "no stop" sentinel; an int
     equality per pop beats allocating-free but boxed-compare
     [stop_at = Some u] in the hot loop. *)
  let stop = match stop_at with Some v -> v | None -> -1 in
  dist.(src) <- 0.;
  Heap.push heap 0. src;
  let finished = ref false in
  while not !finished do
    match Heap.pop heap with
    | None -> finished := true
    | Some (d, u) ->
        if not settled.(u) && d <= dist.(u) then begin
          settled.(u) <- true;
          if u = stop then finished := true
          else
            List.iter
              (fun (v, w) ->
                if w < 0. then invalid_arg "Dijkstra: negative edge weight";
                if
                  (not settled.(v))
                  && (not (banned_node v))
                  && (not (banned_edge u v))
                  && Float.is_finite w
                then begin
                  let nd = d +. w in
                  if nd < dist.(v) then begin
                    dist.(v) <- nd;
                    prev.(v) <- u;
                    Heap.push heap nd v
                  end
                end)
              (Digraph.succ g u)
        end
  done;
  (dist, prev)

let shortest_path ?banned_node ?banned_edge g ~src ~dst =
  let banned_node =
    match banned_node with
    | None -> None
    | Some f -> Some (fun v -> v <> src && v <> dst && f v)
  in
  let dist, prev = search ?banned_node ?banned_edge g ~src ~stop_at:(Some dst) in
  if Float.is_finite dist.(dst) then begin
    let rec build acc u = if u = src then src :: acc else build (u :: acc) prev.(u) in
    Some (dist.(dst), build [] dst)
  end
  else None

let distances ?banned_node ?banned_edge g ~src =
  fst (search ?banned_node ?banned_edge g ~src ~stop_at:None)
