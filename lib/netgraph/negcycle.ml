type result = {
  dist : float array;
  pred : int array;
  cycle : int list option;
}

(* Walk predecessor pointers from a node whose label still improved
   after n relaxation rounds.  After n hops the walk must have entered a
   cycle of the predecessor graph; every such cycle has negative total
   weight (each pred arc was a strict improvement when installed).
   Extract it by marking visit order and cutting at the first repeat. *)
let extract_cycle pred start =
  let n = Array.length pred in
  let v = ref start in
  (* Land inside the cycle: n pred-hops from any improving node. *)
  for _ = 1 to n do
    if !v >= 0 then v := pred.(!v)
  done;
  if !v < 0 then None
  else begin
    let seen = Array.make n (-1) in
    let order = ref [] in
    let rec go u k =
      if seen.(u) >= 0 then begin
        (* [order] holds nodes most recent first.  A pred walk runs arcs
           backwards (visiting v then pred v means the arc pred v -> v),
           so most-recent-first is already forward arc order; the cycle
           is the prefix down to the first occurrence of [u], closed by
           the arc [u -> head]. *)
        let rec take acc = function
          | [] -> None
          | w :: tl ->
              if w = u then Some (List.rev (w :: acc)) else take (w :: acc) tl
        in
        take [] !order
      end
      else begin
        seen.(u) <- k;
        order := u :: !order;
        if pred.(u) < 0 then None else go pred.(u) (k + 1)
      end
    in
    (* The pred walk runs arcs backwards, so the extracted list already
       reads in forward arc order (oldest-to-newest reversal). *)
    go !v 0
  end

let run ?sources g =
  let n = Digraph.nnodes g in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let srcs = match sources with Some l -> l | None -> List.init n Fun.id in
  let q = Queue.create () in
  let inq = Array.make n false in
  (* Relaxation count per node: a node relaxed more than n times sits on
     or behind a negative cycle. *)
  let relaxed = Array.make n 0 in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Negcycle.run: source out of range";
      dist.(s) <- 0.;
      if not inq.(s) then begin
        Queue.add s q;
        inq.(s) <- true
      end)
    srcs;
  let cycle = ref None in
  (* Hard cap on total relaxations: guarantees termination even if a
     negative cycle keeps resisting extraction (pred pointers mid-update
     can transiently miss it); giving up is merely conservative. *)
  let budget = ref ((4 * n * Int.max 1 (Digraph.nedges g)) + 64) in
  (try
     while not (Queue.is_empty q) do
       let u = Queue.pop q in
       inq.(u) <- false;
       let du = dist.(u) in
       List.iter
         (fun (v, w) ->
           if du +. w < dist.(v) -. 1e-12 then begin
             decr budget;
             if !budget < 0 then raise Exit;
             dist.(v) <- du +. w;
             pred.(v) <- u;
             relaxed.(v) <- relaxed.(v) + 1;
             if relaxed.(v) > n then begin
               cycle := extract_cycle pred v;
               if !cycle <> None then raise Exit
             end;
             if not inq.(v) then begin
               Queue.add v q;
               inq.(v) <- true
             end
           end)
         (Digraph.succ g u)
     done
   with Exit -> ());
  { dist; pred; cycle = !cycle }

let negative_cycle g = (run g).cycle

let cycle_weight g = function
  | [] -> 0.
  | first :: _ as vs ->
      let rec go acc = function
        | [ last ] -> acc +. Digraph.weight g last first
        | a :: (b :: _ as tl) -> go (acc +. Digraph.weight g a b) tl
        | [] -> acc
      in
      go 0. vs
