(** Bellman–Ford shortest paths and negative-cycle extraction.

    The cut-separation companion to {!Dijkstra}: where Dijkstra needs
    non-negative weights, Bellman–Ford tolerates negative arcs and —
    the property separation actually uses — certifies the {e absence}
    of negative cycles or returns one.  Negative-cycle separation for
    wireless design (D'Andreagiovanni–Mannino–Sassano) reduces "is
    there a violated cycle inequality through this vertex?" to "does
    this reweighted graph contain a negative cycle?", so the search is
    exactly this module.

    Works on the same {!Digraph.t} adjacency representation as
    {!Dijkstra} and {!Yen}; graphs are small (the conflict structure of
    one LP relaxation), so the plain O(V·E) label-correcting loop with
    a FIFO worklist (SPFA) is used. *)

type result = {
  dist : float array;
      (** Shortest-walk distance from the source set; [infinity] for
          unreached nodes.  Meaningless for nodes on or downstream of a
          negative cycle (the walk can be shortened forever). *)
  pred : int array;  (** Predecessor on the shortest walk, or -1. *)
  cycle : int list option;
      (** [Some vs] when relaxation still improved after [n] rounds:
          [vs] is a simple directed cycle [v0 -> v1 -> ... -> v0]
          (first node not repeated at the end) of strictly negative
          total weight.  [None] when all labels converged. *)
}

val run : ?sources:int list -> Digraph.t -> result
(** Bellman–Ford from [sources] (default: every node, i.e. a virtual
    super-source at distance 0 to all — the standard setup for pure
    negative-cycle detection).  O(V·E) worst case. *)

val negative_cycle : Digraph.t -> int list option
(** [negative_cycle g] is [(run g).cycle]: a simple directed cycle of
    negative total weight, or [None] when none exists. *)

val cycle_weight : Digraph.t -> int list -> float
(** Total weight of the closed walk [v0 -> v1 -> ... -> v0] described
    by the node list.  @raise Not_found on a missing arc. *)
