type zone_shape =
  | Zone_rect of { x0 : float; y0 : float; x1 : float; y1 : float }
  | Zone_disc of { center : Geometry.Point.t; radius : float }

type zone = { z_shape : zone_shape; z_extra_db : float; z_label : string }

type t =
  | Free_space of { freq_mhz : float }
  | Log_distance of { pl0 : float; exponent : float; d0 : float }
  | Multi_wall of { pl0 : float; exponent : float; d0 : float; plan : Geometry.Floorplan.t }
  | Itu_indoor of { freq_mhz : float; power_coeff : float; floors : int }
  | Shadowed of { base : t; sigma_db : float; seed : int }
  | Zoned of { base : t; zones : zone list }

let log_distance_2_4ghz = Log_distance { pl0 = 40.0; exponent = 3.0; d0 = 1.0 }

let multi_wall_2_4ghz plan = Multi_wall { pl0 = 40.0; exponent = 3.0; d0 = 1.0; plan }

let itu_indoor_2_4ghz = Itu_indoor { freq_mhz = 2400.; power_coeff = 30.; floors = 0 }

let with_shadowing ?(sigma_db = 4.) ?(seed = 1) base =
  (match base with
  | Shadowed _ -> invalid_arg "Channel.with_shadowing: model already shadowed"
  | Free_space _ | Log_distance _ | Multi_wall _ | Itu_indoor _ | Zoned _ -> ());
  if sigma_db < 0. then invalid_arg "Channel.with_shadowing: negative sigma";
  Shadowed { base; sigma_db; seed }

let zone_rect ?(label = "") ~x0 ~y0 ~x1 ~y1 extra_db =
  if not (Float.is_finite extra_db) || extra_db < 0. then
    invalid_arg "Channel.zone_rect: attenuation must be finite and >= 0";
  let x0, x1 = (Float.min x0 x1, Float.max x0 x1) in
  let y0, y1 = (Float.min y0 y1, Float.max y0 y1) in
  { z_shape = Zone_rect { x0; y0; x1; y1 }; z_extra_db = extra_db; z_label = label }

let zone_disc ?(label = "") ~center ~radius extra_db =
  if not (Float.is_finite extra_db) || extra_db < 0. then
    invalid_arg "Channel.zone_disc: attenuation must be finite and >= 0";
  if not (Float.is_finite radius) || radius <= 0. then
    invalid_arg "Channel.zone_disc: radius must be finite and > 0";
  { z_shape = Zone_disc { center; radius }; z_extra_db = extra_db; z_label = label }

(* Zones only ever add loss (their constructors reject negative
   attenuation), so a zoned model is a strict tightening of its base —
   the property the tactical variants rely on.  Wrapping an
   already-zoned model stacks the zone lists, so jamming and corridor
   variants compose. *)
let with_zones zones base =
  match base with
  | Zoned { base; zones = old } -> Zoned { base; zones = old @ zones }
  | Free_space _ | Log_distance _ | Multi_wall _ | Itu_indoor _ | Shadowed _ ->
      Zoned { base; zones }

(* Does the open segment p-q touch the zone?  Rectangles: either
   endpoint inside, or the segment crosses one of the four edges.
   Discs: point-to-segment distance from the centre within the
   radius. *)
let zone_crossed zone (p : Geometry.Point.t) (q : Geometry.Point.t) =
  match zone.z_shape with
  | Zone_rect { x0; y0; x1; y1 } ->
      let inside (r : Geometry.Point.t) =
        r.Geometry.Point.x >= x0 && r.Geometry.Point.x <= x1
        && r.Geometry.Point.y >= y0 && r.Geometry.Point.y <= y1
      in
      inside p || inside q
      ||
      let seg = Geometry.Segment.make p q in
      let edge ax ay bx by =
        Geometry.Segment.intersects seg (Geometry.Segment.of_coords ax ay bx by)
      in
      edge x0 y0 x1 y0 || edge x1 y0 x1 y1 || edge x1 y1 x0 y1 || edge x0 y1 x0 y0
  | Zone_disc { center; radius } ->
      let d = Geometry.Point.sub q p in
      let len2 = Geometry.Point.dot d d in
      let t =
        if len2 <= 0. then 0.
        else
          Float.max 0.
            (Float.min 1. (Geometry.Point.dot (Geometry.Point.sub center p) d /. len2))
      in
      let closest = Geometry.Point.add p (Geometry.Point.scale t d) in
      Geometry.Point.dist closest center <= radius

let zone_attenuation zones p q =
  List.fold_left
    (fun acc z -> if zone_crossed z p q then acc +. z.z_extra_db else acc)
    0. zones

(* Deterministic per-link standard-normal draw: hash the endpoints and
   the seed, then Box-Muller on two uniforms derived from the hash. *)
let link_normal seed (p : Geometry.Point.t) (q : Geometry.Point.t) =
  let h = Hashtbl.hash (seed, p.Geometry.Point.x, p.Geometry.Point.y, q.Geometry.Point.x, q.Geometry.Point.y) in
  let h2 = Hashtbl.hash (h, 0x9e3779b9) in
  let u1 = (float_of_int (h land 0xFFFFFF) +. 1.) /. 16777217. in
  let u2 = float_of_int (h2 land 0xFFFFFF) /. 16777216. in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let min_distance = 0.1

let log_dist ~pl0 ~exponent ~d0 d =
  let d = Float.max min_distance d in
  pl0 +. (10. *. exponent *. Float.log10 (d /. d0))

let rec path_loss model p q =
  let d = Geometry.Point.dist p q in
  match model with
  | Free_space { freq_mhz } ->
      let d_km = Float.max (min_distance /. 1000.) (d /. 1000.) in
      (20. *. Float.log10 d_km) +. (20. *. Float.log10 freq_mhz) +. 32.44
  | Log_distance { pl0; exponent; d0 } -> log_dist ~pl0 ~exponent ~d0 d
  | Multi_wall { pl0; exponent; d0; plan } ->
      log_dist ~pl0 ~exponent ~d0 d +. Geometry.Floorplan.wall_attenuation plan p q
  | Itu_indoor { freq_mhz; power_coeff; floors } ->
      let d = Float.max min_distance d in
      let lf = if floors >= 1 then 15. +. (4. *. float_of_int (floors - 1)) else 0. in
      (20. *. Float.log10 freq_mhz) +. (power_coeff *. Float.log10 d) +. lf -. 28.
  | Shadowed { base; sigma_db; seed } ->
      (* Shadowing never helps below free-space physics: clamp at 0 dB
         total gain relative to the base model minus 2 sigma. *)
      let shift = sigma_db *. link_normal seed p q in
      Float.max 1. (path_loss base p q +. shift)
  | Zoned { base; zones } -> path_loss base p q +. zone_attenuation zones p q

let rec floorplan = function
  | Multi_wall { plan; _ } -> Some plan
  | Shadowed { base; _ } | Zoned { base; _ } -> floorplan base
  | Free_space _ | Log_distance _ | Itu_indoor _ -> None

let path_loss_matrix model locs =
  let n = Array.length locs in
  Array.init n (fun i ->
      Array.init n (fun j -> if i = j then infinity else path_loss model locs.(i) locs.(j)))

let max_range model ~tx_dbm ~gains_dbi ~sensitivity_dbm =
  let budget = tx_dbm +. gains_dbi -. sensitivity_dbm in
  let rec pl_at model d =
    match model with
    | Multi_wall { pl0; exponent; d0; plan = _ } -> log_dist ~pl0 ~exponent ~d0 d
    | Shadowed { base; _ } | Zoned { base; _ } -> pl_at base d
    | (Free_space _ | Log_distance _ | Itu_indoor _) as other ->
        path_loss other Geometry.Point.zero (Geometry.Point.make d 0.)
  in
  let pl_at d = pl_at model d in
  if pl_at min_distance > budget then 0.
  else begin
    let lo = ref min_distance and hi = ref 1e5 in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if pl_at mid <= budget then lo := mid else hi := mid
    done;
    !lo
  end
