(** Radio channel (path-loss) models.

    The paper supports several channel models of different complexity
    and uses the {e multi-wall} model — the classical log-distance model
    plus a per-wall attenuation term for every obstacle crossed — for
    its experiments.  Path-loss values are positive dB figures to be
    subtracted from the link budget. *)

type zone_shape =
  | Zone_rect of { x0 : float; y0 : float; x1 : float; y1 : float }
      (** Axis-aligned rectangle (normalised so [x0 <= x1], [y0 <= y1]). *)
  | Zone_disc of { center : Geometry.Point.t; radius : float }

(** A tactical interference/attenuation zone: any link whose straight
    segment touches the shape pays [z_extra_db] additional loss.  The
    sensitivity-analysis literature's jammed areas, degraded urban
    blocks and heavy-wall sectors are all zones with different sizes and
    attenuations. *)
type zone = { z_shape : zone_shape; z_extra_db : float; z_label : string }

type t =
  | Free_space of { freq_mhz : float }
      (** Friis: [PL = 20 log10 d + 20 log10 f + 32.44] (d km, f MHz). *)
  | Log_distance of { pl0 : float; exponent : float; d0 : float }
      (** [PL = pl0 + 10 n log10 (d / d0)]. *)
  | Multi_wall of {
      pl0 : float;
      exponent : float;
      d0 : float;
      plan : Geometry.Floorplan.t;
    }  (** Log-distance plus wall attenuations from the floor plan. *)
  | Itu_indoor of { freq_mhz : float; power_coeff : float; floors : int }
      (** ITU-R P.1238 indoor propagation:
          [PL = 20 log10 f + N log10 d + Lf(n) - 28], with distance power
          coefficient [N] (~30 for office at 2.4 GHz) and the floor
          penetration term [Lf = 15 + 4 (n - 1)] for [n >= 1] crossed
          floors. *)
  | Shadowed of { base : t; sigma_db : float; seed : int }
      (** [base] plus deterministic log-normal shadowing: a zero-mean
          Gaussian offset with standard deviation [sigma_db], hashed
          from the endpoint pair so the same link always sees the same
          shadowing (required for reproducible optimization). *)
  | Zoned of { base : t; zones : zone list }
      (** [base] plus per-zone extra loss on every link crossing a zone.
          Zone attenuations are non-negative by construction, so a zoned
          model strictly tightens its base. *)

val log_distance_2_4ghz : t
(** Indoor defaults at 2.4 GHz: [pl0 = 40] dB at [d0 = 1] m,
    exponent 3.0. *)

val multi_wall_2_4ghz : Geometry.Floorplan.t -> t
(** Multi-wall model with the same reference values. *)

val itu_indoor_2_4ghz : t
(** ITU-R P.1238 office defaults at 2.4 GHz: [N = 30], same floor. *)

val with_shadowing : ?sigma_db:float -> ?seed:int -> t -> t
(** Wrap a model with log-normal shadowing (default sigma 4 dB).
    @raise Invalid_argument when wrapping an already-shadowed model or
    with a negative sigma. *)

val zone_rect :
  ?label:string -> x0:float -> y0:float -> x1:float -> y1:float -> float -> zone

val zone_disc : ?label:string -> center:Geometry.Point.t -> radius:float -> float -> zone
(** Build zones.  The trailing float is the extra attenuation in dB.
    @raise Invalid_argument on negative/non-finite attenuation or a
    non-positive disc radius. *)

val with_zones : zone list -> t -> t
(** Wrap a model with tactical zones; wrapping an already-zoned model
    appends to its zone list (so variants compose). *)

val zone_crossed : zone -> Geometry.Point.t -> Geometry.Point.t -> bool
(** Whether the straight segment between two points touches the zone. *)

val floorplan : t -> Geometry.Floorplan.t option
(** The floor plan of the underlying multi-wall model, if any (recurses
    through [Shadowed]/[Zoned] wrappers) — for rendering. *)

val path_loss : t -> Geometry.Point.t -> Geometry.Point.t -> float
(** Path loss in dB between two locations.  Distances below 0.1 m are
    clamped to avoid singularities. *)

val path_loss_matrix : t -> Geometry.Point.t array -> float array array
(** All-pairs path loss over candidate locations; the edge-weight input
    of Algorithm 1.  Diagonal entries are [infinity] (no self-links). *)

val max_range :
  t -> tx_dbm:float -> gains_dbi:float -> sensitivity_dbm:float -> float
(** Distance (metres, by bisection, ignoring walls) at which the
    received strength falls to the sensitivity threshold — handy for
    template pruning and tests. *)
