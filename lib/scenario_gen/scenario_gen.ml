module Point = Geometry.Point
module Segment = Geometry.Segment
module Floorplan = Geometry.Floorplan
module Building = Geometry.Building
module Channel = Radio.Channel
module Comp = Components.Component
module Library = Components.Library
module Template = Archex.Template
module Requirements = Archex.Requirements
module Instance = Archex.Instance
module Objective = Archex.Objective
module Scenario = Archex.Scenario

type variant = Baseline | Jammed | Attenuated | Corridor

let variant_name = function
  | Baseline -> "baseline"
  | Jammed -> "jammed"
  | Attenuated -> "attenuated"
  | Corridor -> "corridor"

type kind =
  | Multi_floor of {
      floors : int;
      floor_w : float;
      floor_h : float;
      rooms_x : int;
      rooms_y : int;
    }
  | City_block of {
      blocks_x : int;
      blocks_y : int;
      block_w : float;
      block_h : float;
      street_w : float;
    }

type objective_kind = O_dollar | O_energy | O_mixed

type spec = {
  g_kind : kind;
  g_sensors : int;
  g_relay_grid : int * int;
  g_replicas : int;
  g_min_snr_db : float;
  g_min_lifetime_years : float;
  g_variant : variant;
  g_objective : objective_kind;
  g_seed : int;
}

let multi_floor ?(floors = 2) ?(floor_w = 40.) ?(floor_h = 25.) ?(rooms_x = 3)
    ?(rooms_y = 2) ?(sensors = 8) ?(relay_grid = (10, 5)) ?(replicas = 2)
    ?(min_snr_db = 20.) ?(min_lifetime_years = 0.) ?(variant = Baseline)
    ?(objective = O_dollar) ?(seed = 42) () =
  {
    g_kind = Multi_floor { floors; floor_w; floor_h; rooms_x; rooms_y };
    g_sensors = sensors;
    g_relay_grid = relay_grid;
    g_replicas = replicas;
    g_min_snr_db = min_snr_db;
    g_min_lifetime_years = min_lifetime_years;
    g_variant = variant;
    g_objective = objective;
    g_seed = seed;
  }

let city_block ?(blocks_x = 2) ?(blocks_y = 2) ?(block_w = 22.) ?(block_h = 16.)
    ?(street_w = 8.) ?(sensors = 8) ?(relay_grid = (10, 8)) ?(replicas = 2)
    ?(min_snr_db = 20.) ?(min_lifetime_years = 0.) ?(variant = Baseline)
    ?(objective = O_dollar) ?(seed = 42) () =
  {
    g_kind = City_block { blocks_x; blocks_y; block_w; block_h; street_w };
    g_sensors = sensors;
    g_relay_grid = relay_grid;
    g_replicas = replicas;
    g_min_snr_db = min_snr_db;
    g_min_lifetime_years = min_lifetime_years;
    g_variant = variant;
    g_objective = objective;
    g_seed = seed;
  }

let objective_of = function
  | O_dollar -> Objective.dollar
  | O_energy -> Objective.energy
  | O_mixed -> Objective.combine Objective.dollar Objective.energy

(* Same deterministic LCG as {!Archex.Scenarios} so the two generator
   families jitter identically for identical seeds. *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. float_of_int 0x3FFFFFFF

let clamp lo hi v = Float.max lo (Float.min hi v)

(* ---- heterogeneous tactical component library ---------------------- *)

(* The builtin Zigbee-class parts plus ruggedized tactical radios:
   higher TX power and antenna gain at much higher cost and current
   draw, so sizing genuinely trades hardware against topology. *)
let tactical_library =
  let mk = Comp.make in
  Library.of_list_exn
    (Library.components Library.builtin
    @ [
        mk ~name:"sensor-tac" ~role:Comp.Sensor ~cost:12. ~tx_power_dbm:8.
          ~antenna_gain_dbi:2. ~radio_tx_ma:70. ();
        mk ~name:"relay-tac" ~role:Comp.Relay ~cost:55. ~tx_power_dbm:10.
          ~antenna_gain_dbi:5. ~radio_tx_ma:95. ~sensitivity_dbm:(-101.) ();
        mk ~name:"relay-tac-lp" ~role:Comp.Relay ~cost:70. ~tx_power_dbm:7.
          ~antenna_gain_dbi:3. ~radio_tx_ma:60. ~radio_rx_ma:20. ~active_ma:4.
          ~sleep_ua:0.5 ~sensitivity_dbm:(-98.) ();
        mk ~name:"sink-tac" ~role:Comp.Sink ~cost:150. ~tx_power_dbm:10.
          ~antenna_gain_dbi:6. ~radio_tx_ma:95. ~sensitivity_dbm:(-101.) ();
      ])

(* ---- floor plans ---------------------------------------------------- *)

let translate_walls dx dy walls =
  List.map
    (fun { Floorplan.seg; material } ->
      {
        Floorplan.seg =
          Segment.make
            (Point.make (seg.Segment.a.Point.x +. dx) (seg.Segment.a.Point.y +. dy))
            (Point.make (seg.Segment.b.Point.x +. dx) (seg.Segment.b.Point.y +. dy));
        material;
      })
    walls

let slab = Floorplan.Custom ("slab", 25.)

(* [floors] office floors laid side by side in one plan, separated by
   heavy "slab" dividers, each carrying a stairwell gap that alternates
   between the south and north end — the only cheap crossing between
   adjacent floors, as in a staircase-linked building laid flat. *)
let multi_floor_plan ~seed ~floors ~floor_w ~floor_h ~rooms_x ~rooms_y =
  if floors < 1 then invalid_arg "Scenario_gen: need at least one floor";
  let stair_w = 2.4 in
  let walls = ref [] in
  for f = 0 to floors - 1 do
    let office =
      Building.office ~seed:(seed + f) ~width:floor_w ~height:floor_h ~rooms_x
        ~rooms_y ()
    in
    let dx = float_of_int f *. floor_w in
    (* Drop the office's own concrete shell: the combined plan gets one
       shell and explicit dividers, so interior partitions are the only
       walls we keep.  The shell of [Building.office] is exactly the
       four boundary segments, recognisable by their endpoints. *)
    let interior =
      List.filter
        (fun { Floorplan.seg; _ } ->
          let on_boundary v lo hi = v = lo || v = hi in
          let a = seg.Segment.a and b = seg.Segment.b in
          not
            ((on_boundary a.Point.x 0. floor_w && a.Point.x = b.Point.x)
            || (on_boundary a.Point.y 0. floor_h && a.Point.y = b.Point.y)))
        (Floorplan.walls office)
    in
    walls := translate_walls dx 0. interior @ !walls;
    if f > 0 then begin
      (* Divider at x = dx with a stairwell gap alternating ends. *)
      let gap_lo, gap_hi =
        if f mod 2 = 1 then (1., 1. +. stair_w)
        else (floor_h -. 1. -. stair_w, floor_h -. 1.)
      in
      walls :=
        { Floorplan.seg = Segment.of_coords dx 0. dx gap_lo; material = slab }
        :: { Floorplan.seg = Segment.of_coords dx gap_hi dx floor_h; material = slab }
        :: !walls
    end
  done;
  let w = float_of_int floors *. floor_w in
  let shell =
    [
      { Floorplan.seg = Segment.of_coords 0. 0. w 0.; material = Floorplan.Concrete };
      { Floorplan.seg = Segment.of_coords w 0. w floor_h; material = Floorplan.Concrete };
      { Floorplan.seg = Segment.of_coords w floor_h 0. floor_h; material = Floorplan.Concrete };
      { Floorplan.seg = Segment.of_coords 0. floor_h 0. 0.; material = Floorplan.Concrete };
    ]
  in
  Floorplan.create ~width:w ~height:floor_h (shell @ !walls)

(* A [blocks_x] x [blocks_y] grid of brick buildings separated by open
   streets.  Each building has a door gap in the middle of its south
   wall and one interior cross partition. *)
let city_block_plan ~seed ~blocks_x ~blocks_y ~block_w ~block_h ~street_w =
  if blocks_x < 1 || blocks_y < 1 then
    invalid_arg "Scenario_gen: need at least one block";
  let rand = lcg seed in
  let door_w = 1.6 in
  let w = (float_of_int blocks_x *. (block_w +. street_w)) +. street_w in
  let h = (float_of_int blocks_y *. (block_h +. street_w)) +. street_w in
  let walls = ref [] in
  for bx = 0 to blocks_x - 1 do
    for by = 0 to blocks_y - 1 do
      let x0 = street_w +. (float_of_int bx *. (block_w +. street_w)) in
      let y0 = street_w +. (float_of_int by *. (block_h +. street_w)) in
      let x1 = x0 +. block_w and y1 = y0 +. block_h in
      (* Door position along the south wall, jittered per block. *)
      let dcenter = x0 +. (block_w *. (0.3 +. (0.4 *. rand ()))) in
      let dlo = dcenter -. (door_w /. 2.) and dhi = dcenter +. (door_w /. 2.) in
      let brick seg = { Floorplan.seg; material = Floorplan.Brick } in
      walls :=
        brick (Segment.of_coords x0 y0 dlo y0)
        :: brick (Segment.of_coords dhi y0 x1 y0)
        :: brick (Segment.of_coords x1 y0 x1 y1)
        :: brick (Segment.of_coords x1 y1 x0 y1)
        :: brick (Segment.of_coords x0 y1 x0 y0)
        :: {
             Floorplan.seg =
               Segment.of_coords x0 (y0 +. (block_h /. 2.)) (x0 +. (block_w /. 2.))
                 (y0 +. (block_h /. 2.));
             material = Floorplan.Drywall;
           }
        :: !walls
    done
  done;
  Floorplan.create ~width:w ~height:h (List.rev !walls)

let plan_of_spec spec =
  match spec.g_kind with
  | Multi_floor { floors; floor_w; floor_h; rooms_x; rooms_y } ->
      multi_floor_plan ~seed:spec.g_seed ~floors ~floor_w ~floor_h ~rooms_x ~rooms_y
  | City_block { blocks_x; blocks_y; block_w; block_h; street_w } ->
      city_block_plan ~seed:spec.g_seed ~blocks_x ~blocks_y ~block_w ~block_h
        ~street_w

(* ---- node placement ------------------------------------------------- *)

(* Sensor anchors: room centres (multi-floor) or building centres (city
   blocks), round-robin, jittered deterministically. *)
let sensor_anchor_points spec =
  match spec.g_kind with
  | Multi_floor { floors; floor_w; floor_h; rooms_x; rooms_y } ->
      List.concat
        (List.init floors (fun f ->
             let dx = float_of_int f *. floor_w in
             List.map
               (fun (p : Point.t) -> Point.make (p.Point.x +. dx) p.Point.y)
               (Building.room_centers ~width:floor_w ~height:floor_h ~rooms_x
                  ~rooms_y)))
  | City_block { blocks_x; blocks_y; block_w; block_h; street_w } ->
      List.concat
        (List.init blocks_x (fun bx ->
             List.init blocks_y (fun by ->
                 Point.make
                   (street_w
                   +. (float_of_int bx *. (block_w +. street_w))
                   +. (block_w /. 2.))
                   (street_w
                   +. (float_of_int by *. (block_h +. street_w))
                   +. (block_h /. 2.)))))

let sink_point spec plan =
  match spec.g_kind with
  | Multi_floor { floor_w; floor_h; _ } ->
      (* West end of the ground floor: every other floor must route
         through the stairwells. *)
      Point.make (floor_w /. 2.) (floor_h /. 2.)
  | City_block _ ->
      Point.make (Floorplan.width plan /. 2.) (Floorplan.height plan /. 2.)

(* ---- tactical variants ---------------------------------------------- *)

let variant_zones spec plan ~sink ~sensors =
  let w = Floorplan.width plan and h = Floorplan.height plan in
  let rand = lcg (spec.g_seed lxor 0x5bd1e) in
  match spec.g_variant with
  | Baseline -> []
  | Jammed ->
      (* A handful of jammer discs scattered over the area; links
         through them pay 30 dB.  Discs are rejection-sampled away from
         the fixed nodes so a jammed scenario stresses routing without
         stranding a sensor outright. *)
      let njam = 2 + (spec.g_sensors / 6) in
      let radius = 0.14 *. Float.min w h in
      let clear_of (c : Point.t) =
        Point.dist c sink > radius +. 3.
        && List.for_all (fun s -> Point.dist c s > radius +. 3.) sensors
      in
      List.init njam (fun i ->
          let center = ref (Point.make (w /. 2.) (h /. 2.)) in
          (try
             for _ = 1 to 30 do
               let c =
                 Point.make
                   (w *. (0.12 +. (0.76 *. rand ())))
                   (h *. (0.12 +. (0.76 *. rand ())))
               in
               center := c;
               if clear_of c then raise Exit
             done
           with Exit -> ());
          Channel.zone_disc
            ~label:(Printf.sprintf "jam%d" i)
            ~center:!center ~radius 30.)
  | Attenuated ->
      (* Hardened sectors: alternating vertical strips whose walls are
         effectively much heavier (per-zone wall attenuation). *)
      let strips = 4 in
      List.filter_map
        (fun i ->
          if i mod 2 = 1 then
            Some
              (Channel.zone_rect
                 ~label:(Printf.sprintf "hard%d" i)
                 ~x0:(w *. float_of_int i /. float_of_int strips)
                 ~y0:0.
                 ~x1:(w *. float_of_int (i + 1) /. float_of_int strips)
                 ~y1:h 12.)
          else None)
        (List.init strips Fun.id)
  | Corridor ->
      (* A mandatory relay corridor: a horizontal band through the sink
         stays clean, everything north/south of it pays 22 dB — routes
         must collapse onto the corridor. *)
      let band = 0.18 *. h in
      let lo = clamp 0. h (sink.Point.y -. band) in
      let hi = clamp 0. h (sink.Point.y +. band) in
      [
        Channel.zone_rect ~label:"south-denied" ~x0:0. ~y0:0. ~x1:w ~y1:lo 22.;
        Channel.zone_rect ~label:"north-denied" ~x0:0. ~y0:hi ~x1:w ~y1:h 22.;
      ]

(* ---- instance build ------------------------------------------------- *)

let build spec =
  if spec.g_sensors < 1 then Error "Scenario_gen.build: need at least one sensor"
  else begin
    let plan = plan_of_spec spec in
    let w = Floorplan.width plan and h = Floorplan.height plan in
    let rand = lcg spec.g_seed in
    let anchors = Array.of_list (sensor_anchor_points spec) in
    if Array.length anchors = 0 then Error "Scenario_gen.build: no sensor anchors"
    else begin
      let sensors =
        List.init spec.g_sensors (fun i ->
            let c = anchors.(i mod Array.length anchors) in
            let jx = (rand () -. 0.5) *. 3. and jy = (rand () -. 0.5) *. 3. in
            Point.make
              (clamp 1. (w -. 1.) (c.Point.x +. jx))
              (clamp 1. (h -. 1.) (c.Point.y +. jy)))
      in
      let sink = sink_point spec plan in
      let gx, gy = spec.g_relay_grid in
      let relays = Building.candidate_grid plan ~nx:gx ~ny:gy in
      let nodes =
        List.mapi
          (fun i loc ->
            { Template.name = Printf.sprintf "s%d" i; role = Comp.Sensor; loc; fixed = true })
          sensors
        @ [ { Template.name = "sink"; role = Comp.Sink; loc = sink; fixed = true } ]
        @ List.mapi
            (fun i loc ->
              { Template.name = Printf.sprintf "r%d" i; role = Comp.Relay; loc; fixed = false })
            relays
      in
      let template = Template.create nodes in
      let sink_idx = Option.get (Template.index_of template "sink") in
      let requirements =
        List.fold_left
          (fun acc i ->
            let src = Option.get (Template.index_of template (Printf.sprintf "s%d" i)) in
            Requirements.add_route ~replicas:spec.g_replicas acc ~src ~dst:sink_idx)
          Requirements.empty
          (List.init spec.g_sensors Fun.id)
      in
      let requirements =
        {
          requirements with
          Requirements.min_snr_db = Some spec.g_min_snr_db;
          min_lifetime_years =
            (if spec.g_min_lifetime_years > 0. then Some spec.g_min_lifetime_years
             else None);
        }
      in
      let channel =
        let base = Channel.multi_wall_2_4ghz plan in
        match variant_zones spec plan ~sink ~sensors with
        | [] -> base
        | zones -> Channel.with_zones zones base
      in
      Instance.create ~template ~library:tactical_library ~channel ~requirements
        ~objective:(objective_of spec.g_objective) ()
    end
  end

(* ---- registry defaults ---------------------------------------------- *)

let defaults : (string * string * Scenario.scale * spec) list =
  let mf = multi_floor and cb = city_block in
  [
    ( "tac-smoke",
      "2-floor tactical smoke instance (CI scale)",
      Scenario.Test,
      mf ~floors:2 ~floor_w:28. ~floor_h:18. ~rooms_x:2 ~rooms_y:2 ~sensors:3
        ~relay_grid:(6, 3) ~replicas:1 () );
    ( "tac-mf2",
      "2-floor building, 8 routed sensors, 50 relay candidates",
      Scenario.Tactical,
      mf () );
    ( "tac-mf2-jam",
      "tac-mf2 under jammer discs",
      Scenario.Tactical,
      mf ~variant:Jammed () );
    ( "tac-mf2-atten",
      "tac-mf2 with hardened (extra-attenuation) sectors",
      Scenario.Tactical,
      mf ~variant:Attenuated () );
    ( "tac-mf2-corridor",
      "tac-mf2 with a mandatory relay corridor",
      Scenario.Tactical,
      mf ~variant:Corridor () );
    ( "tac-mf3",
      "3-floor building, 12 routed sensors, 84 relay candidates",
      Scenario.Tactical,
      mf ~floors:3 ~sensors:12 ~relay_grid:(14, 6) () );
    ( "tac-city2",
      "2x2 city blocks, 8 routed sensors, 80 relay candidates",
      Scenario.Tactical,
      cb () );
    ( "tac-city2-jam",
      "tac-city2 under jammer discs",
      Scenario.Tactical,
      cb ~variant:Jammed () );
    ( "tac-city2-corridor",
      "tac-city2 with a mandatory relay corridor",
      Scenario.Tactical,
      cb ~variant:Corridor () );
    ( "tac-city3",
      "3x3 city blocks, 12 routed sensors, 120 relay candidates",
      Scenario.Tactical,
      cb ~blocks_x:3 ~blocks_y:3 ~sensors:12 ~relay_grid:(12, 10) () );
    ( "tac-city4",
      "4x4 city blocks, 16 routed sensors, 192 relay candidates",
      Scenario.Tactical,
      cb ~blocks_x:4 ~blocks_y:4 ~sensors:16 ~relay_grid:(16, 12) () );
  ]

let registered = ref false

let register_defaults () =
  if not !registered then begin
    registered := true;
    List.iter
      (fun (name, descr, scale, spec) ->
        Scenario.register
          {
            Scenario.sc_name = name;
            sc_descr = descr;
            sc_scale = scale;
            sc_expected = None;
            sc_build = (fun () -> build spec);
          })
      defaults
  end
