(** Seeded tactical-scale scenario generator.

    Generates deterministic multi-floor and city-block deployment
    templates with up to hundreds of candidate nodes, a heterogeneous
    (builtin + ruggedized tactical) component library, and the
    constraint variants of the tactical wireless design literature:
    jammed areas, hardened (extra-attenuation) sectors, and mandatory
    relay corridors — all expressed as {!Radio.Channel.Zoned} zones, so
    each variant strictly tightens the baseline feasible set.

    Everything is driven by the seed in the {!spec}: building the same
    spec twice yields identical instances (all jitter comes from the
    same LCG used by {!Archex.Scenarios}). *)

type variant =
  | Baseline
  | Jammed  (** Jammer discs: +30 dB on links through them. *)
  | Attenuated  (** Hardened sectors: +12 dB vertical strips. *)
  | Corridor
      (** Mandatory relay corridor: +22 dB everywhere except a band
          through the sink. *)

val variant_name : variant -> string

type kind =
  | Multi_floor of {
      floors : int;
      floor_w : float;
      floor_h : float;
      rooms_x : int;
      rooms_y : int;
    }
      (** [floors] office floors laid side by side, separated by heavy
          slab dividers pierced only by alternating stairwell gaps; the
          sink sits on the ground floor so upper floors route through
          the stairwells. *)
  | City_block of {
      blocks_x : int;
      blocks_y : int;
      block_w : float;
      block_h : float;
      street_w : float;
    }
      (** A street grid of brick buildings; the sink sits at the central
          intersection. *)

type objective_kind = O_dollar | O_energy | O_mixed

type spec = {
  g_kind : kind;
  g_sensors : int;  (** Routed end devices (fixed, one per room/block, round-robin). *)
  g_relay_grid : int * int;  (** Relay candidate grid over the whole area. *)
  g_replicas : int;  (** Disjoint routes per sensor. *)
  g_min_snr_db : float;
  g_min_lifetime_years : float;  (** [<= 0.] disables the lifetime bound. *)
  g_variant : variant;
  g_objective : objective_kind;
  g_seed : int;
}

val multi_floor :
  ?floors:int ->
  ?floor_w:float ->
  ?floor_h:float ->
  ?rooms_x:int ->
  ?rooms_y:int ->
  ?sensors:int ->
  ?relay_grid:int * int ->
  ?replicas:int ->
  ?min_snr_db:float ->
  ?min_lifetime_years:float ->
  ?variant:variant ->
  ?objective:objective_kind ->
  ?seed:int ->
  unit ->
  spec
(** Defaults: 2 floors of 40 m x 25 m with 3x2 rooms, 8 sensors, a
    10x5 relay grid, 2 disjoint routes, SNR >= 20 dB, no lifetime
    bound, baseline variant, dollar objective, seed 42. *)

val city_block :
  ?blocks_x:int ->
  ?blocks_y:int ->
  ?block_w:float ->
  ?block_h:float ->
  ?street_w:float ->
  ?sensors:int ->
  ?relay_grid:int * int ->
  ?replicas:int ->
  ?min_snr_db:float ->
  ?min_lifetime_years:float ->
  ?variant:variant ->
  ?objective:objective_kind ->
  ?seed:int ->
  unit ->
  spec
(** Defaults: 2x2 blocks of 22 m x 16 m on 8 m streets, 8 sensors, a
    10x8 relay grid, 2 disjoint routes, SNR >= 20 dB, baseline,
    dollar, seed 42. *)

val tactical_library : Components.Library.t
(** {!Components.Library.builtin} plus ruggedized tactical parts
    ([sensor-tac], [relay-tac], [relay-tac-lp], [sink-tac]): more TX
    power and antenna gain at higher cost and current draw. *)

val build : spec -> (Archex.Instance.t, string) result
(** Deterministically build the instance: same spec, same instance. *)

val defaults : (string * string * Archex.Scenario.scale * spec) list
(** The named entries {!register_defaults} installs:
    [(name, description, scale, spec)]. *)

val register_defaults : unit -> unit
(** Register {!defaults} into the {!Archex.Scenario} registry
    (idempotent).  Call before serving or listing scenarios — e.g. at
    daemon/CLI/bench start-up. *)
