(* Admission control: a counting semaphore with a bounded waiting room.

   At most [max_active] solves run concurrently; up to [max_waiting]
   more requests block in FIFO-ish order on the condition variable.
   Anything beyond that is refused immediately — the daemon answers
   with an explicit [Rejected] frame instead of queueing unboundedly,
   so a burst degrades into visible backpressure rather than memory
   growth and timeout storms. *)

type t = {
  max_active : int;
  max_waiting : int;
  lock : Mutex.t;
  cond : Condition.t;
  mutable active : int;
  mutable waiting : int;
  (* Draining: new arrivals are refused, waiters are flushed out. *)
  mutable closed : bool;
}

let create ~max_active ~max_waiting =
  if max_active < 1 then invalid_arg "Admission.create: max_active must be >= 1";
  if max_waiting < 0 then invalid_arg "Admission.create: max_waiting must be >= 0";
  {
    max_active;
    max_waiting;
    lock = Mutex.create ();
    cond = Condition.create ();
    active = 0;
    waiting = 0;
    closed = false;
  }

let try_acquire t =
  Mutex.lock t.lock;
  let verdict =
    if t.closed then `Closed
    else if t.active < t.max_active then begin
      t.active <- t.active + 1;
      `Go
    end
    else if t.waiting >= t.max_waiting then `Busy
    else begin
      t.waiting <- t.waiting + 1;
      while t.active >= t.max_active && not t.closed do
        Condition.wait t.cond t.lock
      done;
      t.waiting <- t.waiting - 1;
      if t.closed then `Closed
      else begin
        t.active <- t.active + 1;
        `Go
      end
    end
  in
  Mutex.unlock t.lock;
  verdict

let release t =
  Mutex.lock t.lock;
  t.active <- t.active - 1;
  if t.active < 0 then begin
    Mutex.unlock t.lock;
    invalid_arg "Admission.release: release without acquire"
  end
  else begin
    Condition.signal t.cond;
    Mutex.unlock t.lock
  end

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

let active t =
  Mutex.lock t.lock;
  let v = t.active in
  Mutex.unlock t.lock;
  v

let waiting t =
  Mutex.lock t.lock;
  let v = t.waiting in
  Mutex.unlock t.lock;
  v
