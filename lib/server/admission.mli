(** Bounded admission for the daemon's solve lane.

    A counting semaphore ([max_active] concurrent holders) with a
    bounded waiting room ([max_waiting] blocked callers); anything
    beyond both limits is turned away immediately so the daemon can
    answer with an explicit backpressure frame instead of queueing
    without bound. *)

type t

val create : max_active:int -> max_waiting:int -> t
(** @raise Invalid_argument on [max_active < 1] or [max_waiting < 0]. *)

val try_acquire : t -> [ `Go | `Busy | `Closed ]
(** [`Go]: a slot is held (pair with {!release}); may have blocked in
    the waiting room first.  [`Busy]: both the active lane and the
    waiting room are full — reject the request.  [`Closed]: {!close}
    was called (daemon draining). *)

val release : t -> unit
(** Release a held slot, waking one waiter.
    @raise Invalid_argument on release without acquire. *)

val close : t -> unit
(** Start draining: future {!try_acquire}s return [`Closed] and every
    blocked waiter is flushed out with [`Closed]. *)

val active : t -> int

val waiting : t -> int
