(* Client side of the archexd protocol. *)

type conn = Unix.file_descr

let connect path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | fd -> (
      try
        Unix.connect fd (Unix.ADDR_UNIX path);
        Ok fd
      with Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e)))

let disconnect fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send_req fd req =
  try Ok (Protocol.send fd (Protocol.encode_request req)) with
  | Protocol.Bad e -> Error e
  | Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let recv_resp fd =
  match Protocol.recv fd with
  | Error e -> Error e
  | Ok None -> Error "connection closed before a response"
  | Ok (Some payload) -> Protocol.decode_response payload

let rpc fd req =
  match send_req fd req with Error e -> Error e | Ok () -> recv_resp fd

let ping fd = rpc fd Protocol.Ping

let shutdown fd = rpc fd Protocol.Shutdown

let solve ?on_update fd payload overrides =
  match send_req fd (Protocol.Solve { payload; overrides }) with
  | Error e -> Error e
  | Ok () ->
      let rec loop () =
        match recv_resp fd with
        | Error e -> Error e
        | Ok (Protocol.Update { u_objective; u_bound; u_elapsed_s }) ->
            (match on_update with
            | Some f ->
                f ~objective:u_objective ~bound:u_bound ~elapsed_s:u_elapsed_s
            | None -> ());
            loop ()
        | Ok terminal -> Ok terminal
      in
      loop ()
