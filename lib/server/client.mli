(** Client side of the archexd protocol: connect, frame requests,
    collect streamed updates and the terminal response. *)

type conn

val connect : string -> (conn, string) result
(** Connect to the daemon's Unix-domain socket. *)

val disconnect : conn -> unit

val ping : conn -> (Protocol.response, string) result
(** [Ok (Pong _)] from a live daemon. *)

val shutdown : conn -> (Protocol.response, string) result
(** Ask the daemon to drain and exit; the ack arrives before the drain
    starts. *)

val solve :
  ?on_update:(objective:float -> bound:float -> elapsed_s:float -> unit) ->
  conn ->
  Protocol.solve_payload ->
  Protocol.overrides ->
  (Protocol.response, string) result
(** Submit a solve and block until its terminal frame ([Result],
    [Rejected], [Error_msg] or [Interrupted]); any [Update] frames
    streamed before it are fed to [on_update]. *)
