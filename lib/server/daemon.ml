(* archexd server core.

   Concurrency model: handler systhreads never do tree work themselves
   — every solve request's config carries the daemon's shared
   {!Milp.Scheduler}, so node processing runs on the pool's worker
   domains (the scheduler multiplexes concurrent searches with
   weighted fair victim selection) while the handler thread blocks in
   [Scheduler.await].  Handler threads all share the runtime's domain
   0, which is fine because they only parse frames, touch the session
   cache and sleep. *)

module Clock = Milp.Clock
module Solver_config = Archex.Solver_config
module Session = Archex.Session
module Outcome = Archex.Outcome

let version = "archexd/0.8"

type config = {
  c_socket : string;
  c_workers : int;
  c_max_active : int;
  c_max_waiting : int;
  c_cache_capacity : int;
  c_time_limit : float;
  c_drain_timeout : float;
  c_verbose : bool;
}

let default_config =
  {
    c_socket = "archexd.sock";
    c_workers = 1;
    c_max_active = 2;
    c_max_waiting = 4;
    c_cache_capacity = 4;
    c_time_limit = 60.;
    c_drain_timeout = 30.;
    c_verbose = false;
  }

(* A cached warm session plus the largest K* it has grown to: requests
   at a smaller K* reuse the grown pools as-is (the encoding is a
   superset, carry incumbent included), larger ones extend them. *)
type warm = { w_session : Session.t; mutable w_kstar : int }

type conn = { c_fd : Unix.file_descr; c_wlock : Mutex.t }

type t = {
  d_config : config;
  d_workers : int;  (* resolved: d_config.c_workers with 0 auto-detected *)
  d_sched : Milp.Scheduler.t;
  d_adm : Admission.t;
  d_cache : (string, warm) Session_cache.t;
  d_stop : bool Atomic.t;
  d_sock : Unix.file_descr;
  d_lock : Mutex.t;  (* guards d_inflight, d_open, d_nconns *)
  mutable d_inflight : bool Atomic.t list;
  mutable d_open : conn list;
  mutable d_nconns : int;
}

let logf t fmt =
  Printf.ksprintf
    (fun s -> if t.d_config.c_verbose then Printf.eprintf "[archexd] %s\n%!" s)
    fmt

let workers t = t.d_workers

let cache_stats t = Session_cache.stats t.d_cache

let request_shutdown t = Atomic.set t.d_stop true

let create config =
  if config.c_max_active < 1 then Error "max_active must be >= 1"
  else if config.c_workers < 0 then Error "workers must be >= 0"
  else begin
    (* EPIPE as an exception, not a process kill, when a client hangs
       up mid-stream. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let nworkers =
      if config.c_workers = 0 then Domain.recommended_domain_count ()
      else config.c_workers
    in
    match
      (try Unix.unlink config.c_socket with Unix.Unix_error _ -> ());
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.bind sock (Unix.ADDR_UNIX config.c_socket);
        Unix.listen sock 16;
        Ok sock
      with Unix.Unix_error (e, fn, _) ->
        Unix.close sock;
        Error (Printf.sprintf "%s %s: %s" fn config.c_socket (Unix.error_message e))
    with
    | Error e -> Error e
    | Ok sock ->
        let t =
          {
            d_config = config;
            d_workers = nworkers;
            d_sched = Milp.Scheduler.create ~nworkers;
            d_adm =
              Admission.create ~max_active:config.c_max_active
                ~max_waiting:config.c_max_waiting;
            d_cache = Session_cache.create ~capacity:config.c_cache_capacity;
            d_stop = Atomic.make false;
            d_sock = sock;
            d_lock = Mutex.create ();
            d_inflight = [];
            d_open = [];
            d_nconns = 0;
          }
        in
        logf t "%s listening on %s: %d worker domain%s%s, %d active / %d waiting, %d cached sessions"
          version config.c_socket nworkers
          (if nworkers = 1 then "" else "s")
          (if config.c_workers = 0 then " (auto-detected)" else "")
          config.c_max_active config.c_max_waiting config.c_cache_capacity;
        Ok t
  end

(* ------------------------------------------------------------------ *)
(* Responses *)

let send_resp conn resp =
  Mutex.lock conn.c_wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.c_wlock)
    (fun () -> Protocol.send conn.c_fd (Protocol.encode_response resp))

let pong t = Protocol.Pong
    { version; workers = t.d_workers; sessions = Session_cache.length t.d_cache }

(* ------------------------------------------------------------------ *)
(* Solve handling *)

let register_inflight t a =
  Mutex.lock t.d_lock;
  t.d_inflight <- a :: t.d_inflight;
  (* The drain sweep may already have run: joining after it means no
     one will ever set this flag, so inherit the stop state. *)
  if Atomic.get t.d_stop then Atomic.set a true;
  Mutex.unlock t.d_lock

let unregister_inflight t a =
  Mutex.lock t.d_lock;
  t.d_inflight <- List.filter (fun x -> x != a) t.d_inflight;
  Mutex.unlock t.d_lock

(* Per-request solver config: daemon defaults + the request's sparse
   override, merged in one [Solver_config.override] step.  [budget]
   already folds the request deadline into the time limit. *)
let request_config t ~kstar:k ~budget ~(o : Protocol.overrides) ~interrupt
    ~on_incumbent =
  let open Solver_config in
  let base = default |> with_approx ~kstar:k () in
  let nworkers =
    match o.Protocol.o_workers with
    | None | Some 0 -> t.d_workers (* daemon's resolved pool size *)
    | Some n -> n
  in
  (* Sparse per-request knob application; the group setters validate
     (Invalid_argument surfaces as a "bad request" Error_msg frame). *)
  let app f v cfg = match v with None -> cfg | Some x -> f x cfg in
  override
    {
      no_override with
      o_time_limit = Some budget;
      o_rel_gap = o.Protocol.o_rel_gap;
      o_seed = o.Protocol.o_seed;
      o_workers = Some nworkers;
      o_presolve =
        Option.map
          (fun on -> { base.presolve with ps_enabled = on })
          o.Protocol.o_presolve;
      o_heuristic =
        Option.map
          (function "tabu" -> tabu () | _ -> no_heuristic)
          o.Protocol.o_heuristic;
      o_scheduler = Some t.d_sched;
      o_interrupt = Some interrupt;
      o_on_incumbent = on_incumbent;
    }
    base
  |> app
       (fun s cfg ->
         match Milp.Cuts.families_of_string s with
         | Ok fs -> with_cut_families fs cfg
         | Error e -> invalid_arg e)
       o.Protocol.o_cuts
  |> app with_max_applied_cuts o.Protocol.o_cut_max_applied
  |> app with_cut_max_age o.Protocol.o_cut_max_age
  |> app with_cut_pool_size o.Protocol.o_cut_pool_size
  |> app with_cut_min_violation o.Protocol.o_cut_min_violation

let result_frame ~(mip : Milp.Branch_bound.result) ~solve_time ~workers
    ~cache_hit ~interrupted =
  if interrupted then
    Protocol.Interrupted
      {
        i_objective = mip.Milp.Branch_bound.objective;
        i_bound = mip.Milp.Branch_bound.bound;
        i_has_incumbent = mip.Milp.Branch_bound.solution <> None;
      }
  else
    Protocol.Result
      {
        r_status = Milp.Status.mip_status_to_string mip.Milp.Branch_bound.status;
        r_objective = mip.Milp.Branch_bound.objective;
        r_bound = mip.Milp.Branch_bound.bound;
        r_nodes = mip.Milp.Branch_bound.nodes;
        r_lp_iterations = mip.Milp.Branch_bound.lp_iterations;
        r_solve_time_s = solve_time;
        r_workers = workers;
        r_cache_hit = cache_hit;
      }

(* Streaming hook: called from worker domains on incumbent
   improvements.  Send failures (client gone) silence the stream but
   never kill the solve. *)
let make_streamer conn ~t_recv =
  let broken = Atomic.make false in
  fun obj bound ->
    if not (Atomic.get broken) then
      try
        send_resp conn
          (Protocol.Update
             {
               u_objective = obj;
               u_bound = bound;
               u_elapsed_s = Clock.now () -. t_recv;
             })
      with Protocol.Bad _ | Unix.Unix_error _ -> Atomic.set broken true

let solve_lp t ~text ~(o : Protocol.overrides) ~budget ~interrupt
    ~on_incumbent =
  match Milp.Lp_reader.parse text with
  | Error e -> Protocol.Error_msg ("LP parse error: " ^ e)
  | Ok model ->
      let cfg =
        request_config t ~kstar:1 ~budget ~o ~interrupt ~on_incumbent
      in
      let options = Solver_config.bb_options cfg in
      let t0 = Clock.now () in
      let mip =
        Milp.Branch_bound.solve ~options ~interrupt ~scheduler:t.d_sched
          ?on_incumbent model
      in
      result_frame ~mip ~solve_time:(Clock.now () -. t0)
        ~workers:options.Milp.Branch_bound.nworkers ~cache_hit:false
        ~interrupted:(Atomic.get interrupt)

let solve_workload t ~name ~kstar ~(o : Protocol.overrides) ~budget ~interrupt
    ~on_incumbent =
  match Workload.find name with
  | Error e -> Protocol.Error_msg e
  | Ok w -> (
      let kstar = max 1 kstar in
      let cfg = request_config t ~kstar ~budget ~o ~interrupt ~on_incumbent in
      let build () =
        match Workload.instance w with
        | Error e -> failwith ("scenario build failed: " ^ e)
        | Ok inst -> (
            match Session.create cfg inst with
            | Error e -> failwith ("encoding failed: " ^ e)
            | Ok s -> { w_session = s; w_kstar = kstar })
      in
      match (try Ok (Session_cache.checkout t.d_cache name ~create:build) with Failure e -> Error e) with
      | Error e -> Protocol.Error_msg e
      | Ok (warm, hit) ->
          let fate = ref `Checkin in
          Fun.protect
            ~finally:(fun () ->
              match !fate with
              | `Checkin -> Session_cache.checkin t.d_cache name warm
              | `Discard -> Session_cache.discard t.d_cache name)
            (fun () ->
              if hit then begin
                Session.reconfigure warm.w_session cfg;
                if kstar > warm.w_kstar then begin
                  match Session.grow warm.w_session ~kstar with
                  | Ok () -> warm.w_kstar <- kstar
                  | Error e -> failwith ("pool extension failed: " ^ e)
                end
              end;
              let outcome =
                try Session.solve warm.w_session
                with ex ->
                  fate := `Discard;
                  raise ex
              in
              result_frame ~mip:outcome.Outcome.mip
                ~solve_time:outcome.Outcome.stats.Outcome.solve_time_s
                ~workers:outcome.Outcome.stats.Outcome.workers ~cache_hit:hit
                ~interrupted:(Atomic.get interrupt)))

let handle_solve t conn payload (o : Protocol.overrides) =
  let t_recv = Clock.now () in
  match Admission.try_acquire t.d_adm with
  | `Busy ->
      send_resp conn
        (Protocol.Rejected "busy: active lane and waiting room are full")
  | `Closed -> send_resp conn (Protocol.Rejected "draining: daemon is shutting down")
  | `Go ->
      Fun.protect
        ~finally:(fun () -> Admission.release t.d_adm)
        (fun () ->
          let interrupt = Atomic.make false in
          register_inflight t interrupt;
          Fun.protect
            ~finally:(fun () -> unregister_inflight t interrupt)
            (fun () ->
              (* The request's wall budget: its own limit (or the daemon
                 default), clipped by the deadline — which started at
                 receipt, so waiting-room time counts against it. *)
              let limit =
                match o.Protocol.o_time_limit with
                | Some s -> s
                | None -> t.d_config.c_time_limit
              in
              let budget =
                match o.Protocol.o_deadline_s with
                | None -> limit
                | Some d -> Float.max 0. (Float.min limit (d -. (Clock.now () -. t_recv)))
              in
              let on_incumbent =
                if o.Protocol.o_stream then Some (make_streamer conn ~t_recv)
                else None
              in
              let resp =
                try
                  match o.Protocol.o_heuristic with
                  | Some h when h <> "tabu" && h <> "off" ->
                      Protocol.Error_msg
                        (Printf.sprintf
                           "unknown heuristic %S (expected \"tabu\" or \"off\")" h)
                  | _ -> (
                  match payload with
                  | Protocol.Lp text ->
                      solve_lp t ~text ~o ~budget ~interrupt ~on_incumbent
                  | Protocol.Workload { name; kstar } ->
                      solve_workload t ~name ~kstar ~o ~budget ~interrupt
                        ~on_incumbent)
                with
                | Failure e -> Protocol.Error_msg e
                | Invalid_argument e -> Protocol.Error_msg ("bad request: " ^ e)
              in
              send_resp conn resp))

(* ------------------------------------------------------------------ *)
(* Connections *)

let rec serve t conn =
  match Protocol.recv conn.c_fd with
  | Ok None -> ()
  | Error e -> logf t "connection dropped: %s" e
  | Ok (Some payload) -> (
      match Protocol.decode_request payload with
      | Error e ->
          send_resp conn (Protocol.Error_msg e);
          serve t conn
      | Ok Protocol.Ping ->
          send_resp conn (pong t);
          serve t conn
      | Ok Protocol.Shutdown ->
          (* Ack, then stop reading: the accept loop notices the flag
             within its select timeout and starts the drain. *)
          send_resp conn (pong t);
          request_shutdown t
      | Ok (Protocol.Solve { payload; overrides }) ->
          handle_solve t conn payload overrides;
          if not (Atomic.get t.d_stop) then serve t conn)

let conn_main t conn =
  (try serve t conn with
  | Protocol.Bad e -> logf t "connection error: %s" e
  | Unix.Unix_error (e, fn, _) -> logf t "connection error: %s: %s" fn (Unix.error_message e));
  Mutex.lock t.d_lock;
  t.d_open <- List.filter (fun c -> c != conn) t.d_open;
  t.d_nconns <- t.d_nconns - 1;
  Mutex.unlock t.d_lock;
  try Unix.close conn.c_fd with Unix.Unix_error _ -> ()

let accept_loop t =
  while not (Atomic.get t.d_stop) do
    match Unix.select [ t.d_sock ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept ~cloexec:true t.d_sock with
        | exception Unix.Unix_error (_, _, _) -> ()
        | fd, _ ->
            let conn = { c_fd = fd; c_wlock = Mutex.create () } in
            Mutex.lock t.d_lock;
            t.d_open <- conn :: t.d_open;
            t.d_nconns <- t.d_nconns + 1;
            Mutex.unlock t.d_lock;
            ignore (Thread.create (fun () -> conn_main t conn) ()))
  done

let drain t =
  logf t "draining: %d connection(s), %d in-flight solve(s)" t.d_nconns
    (List.length t.d_inflight);
  Admission.close t.d_adm;
  Mutex.lock t.d_lock;
  (* Raise every in-flight search's interrupt: each returns its current
     incumbent and its handler answers with an [Interrupted] frame. *)
  List.iter (fun a -> Atomic.set a true) t.d_inflight;
  (* Then starve idle handlers: shutting down the read side makes their
     blocking [recv] see EOF without disturbing in-flight writes. *)
  List.iter
    (fun c ->
      try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    t.d_open;
  Mutex.unlock t.d_lock;
  let deadline = Clock.now () +. t.d_config.c_drain_timeout in
  let rec wait () =
    Mutex.lock t.d_lock;
    let n = t.d_nconns in
    Mutex.unlock t.d_lock;
    if n = 0 then true
    else if Clock.now () > deadline then false
    else begin
      Thread.delay 0.02;
      wait ()
    end
  in
  let drained = wait () in
  if not drained then
    logf t "drain timeout: %d connection(s) still open" t.d_nconns;
  Milp.Scheduler.shutdown t.d_sched;
  (try Unix.close t.d_sock with Unix.Unix_error _ -> ());
  (try Unix.unlink t.d_config.c_socket with Unix.Unix_error _ -> ());
  let hits, misses = Session_cache.stats t.d_cache in
  logf t "stopped (cache: %d hits, %d misses)" hits misses;
  drained

let run t =
  accept_loop t;
  drain t
