(** The archexd server core: a persistent solver process multiplexing
    concurrent solve requests over one shared worker-domain pool.

    One {!create} builds the whole serving stack:

    - a {!Milp.Scheduler} domain pool sized by the config's worker
      count ([0] = auto-detect via [Domain.recommended_domain_count]);
      every request's tree search runs on this pool, so two concurrent
      solves share domains under the scheduler's weighted fair
      victim selection instead of oversubscribing the machine;
    - an {!Admission} gate bounding concurrent solves and the waiting
      room, with [Rejected] backpressure frames beyond both;
    - a {!Session_cache} of warm {!Archex.Session}s keyed by workload
      name, so repeated requests for a template reuse its path pools,
      presolve trace, cut carry and incumbent;
    - a Unix-domain listening socket speaking {!Protocol}.

    {!run} owns the accept loop: one handler thread per connection,
    requests on a connection served in order.  Solve handlers block in
    the scheduler while node processing happens on pool domains, so
    handler threads (which share the runtime's domain 0) stay cheap.

    Shutdown is cooperative and drains: {!request_shutdown} (async-
    signal-safe — a single atomic store, so it may be called from a
    SIGINT/SIGTERM handler) stops the accept loop; the daemon then
    closes admission, raises every in-flight request's interrupt flag
    so searches return their current incumbents as [Interrupted]
    frames, waits for handlers to finish, and joins the pool domains.
    {!run} returns [false] if connections failed to drain within the
    configured timeout — the caller should exit nonzero (the CI smoke
    step's leaked-domain check). *)

type config = {
  c_socket : string;  (** Unix-domain socket path to listen on. *)
  c_workers : int;  (** Pool domains; [0] = auto-detect. *)
  c_max_active : int;  (** Concurrent solves admitted. *)
  c_max_waiting : int;  (** Bounded waiting room beyond the lane. *)
  c_cache_capacity : int;
      (** Warm sessions kept; [0] disables the cache (cold mode). *)
  c_time_limit : float;
      (** Default per-solve time limit (seconds) when the request
          carries no override. *)
  c_drain_timeout : float;
      (** Seconds to wait for in-flight work on shutdown before
          declaring the drain failed. *)
  c_verbose : bool;  (** Log to stderr. *)
}

val default_config : config
(** [archexd.sock], one worker, 2 active / 4 waiting, 4 cached
    sessions, 60 s limit, 30 s drain, quiet. *)

val version : string

type t

val create : config -> (t, string) result
(** Resolve the worker count, spin up the scheduler pool and bind the
    listening socket (an existing socket file at the path is
    replaced).  [Error] on socket failures. *)

val workers : t -> int
(** The resolved pool size (after [0] auto-detection). *)

val cache_stats : t -> int * int
(** Session-cache [(hits, misses)] since startup. *)

val request_shutdown : t -> unit
(** Flag the daemon to drain and stop.  Async-signal-safe. *)

val run : t -> bool
(** Serve until {!request_shutdown} or a [Shutdown] frame, then drain.
    Returns [true] on a clean drain (all handlers finished, pool
    domains joined, socket removed); [false] if in-flight connections
    outlived the drain timeout. *)
