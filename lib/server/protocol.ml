(* Length-prefixed binary framing for the archexd socket protocol.

   Wire format: every frame is [u32 BE payload length][payload], and
   every payload starts with a one-byte tag.  Integers are big-endian;
   floats travel as their IEEE-754 bit patterns ([Int64.bits_of_float]),
   so non-finite values (the solver's [infinity] bounds, [nan] cutoffs)
   round-trip exactly.  Strings are [u32 BE length][bytes].  Optional
   fields are a presence byte followed by the value.

   The encode/decode pair below works on payload bytes only; {!send}
   and {!recv} add/strip the length prefix on a file descriptor. *)

let max_frame = 64 * 1024 * 1024
(* A corrupt length prefix must not make [recv] allocate gigabytes. *)

type solve_payload =
  | Lp of string  (* an LP-format model, parsed by Lp_reader *)
  | Workload of { name : string; kstar : int }

type overrides = {
  o_time_limit : float option;
  o_rel_gap : float option;
  o_workers : int option;  (* 0 = auto-detect on the daemon *)
  o_seed : int option;
  o_deadline_s : float option;
      (* wall-clock budget for this request, seconds from receipt,
         enforced on the daemon's monotonic clock *)
  o_presolve : bool option;  (* toggle the presolve reduction stack *)
  o_heuristic : string option;  (* primal matheuristic: "tabu" | "off" *)
  o_cuts : string option;
      (* cut family list, [Milp.Cuts.families_of_string] spelling
         ("all" / "none" / "gmi,cover,..."); parsed on the daemon *)
  o_cut_max_applied : int option;
  o_cut_max_age : int option;
  o_cut_pool_size : int option;
  o_cut_min_violation : float option;
  o_stream : bool;  (* send Update frames on incumbent improvements *)
}

let no_overrides =
  {
    o_time_limit = None;
    o_rel_gap = None;
    o_workers = None;
    o_seed = None;
    o_deadline_s = None;
    o_presolve = None;
    o_heuristic = None;
    o_cuts = None;
    o_cut_max_applied = None;
    o_cut_max_age = None;
    o_cut_pool_size = None;
    o_cut_min_violation = None;
    o_stream = false;
  }

type request =
  | Ping
  | Solve of { payload : solve_payload; overrides : overrides }
  | Shutdown

type result_info = {
  r_status : string;
  r_objective : float;
  r_bound : float;
  r_nodes : int;
  r_lp_iterations : int;
  r_solve_time_s : float;
  r_workers : int;
  r_cache_hit : bool;
}

type response =
  | Pong of { version : string; workers : int; sessions : int }
  | Result of result_info
  | Update of { u_objective : float; u_bound : float; u_elapsed_s : float }
  | Interrupted of { i_objective : float; i_bound : float; i_has_incumbent : bool }
  | Rejected of string
  | Error_msg of string

(* ---- encoding ---- *)

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)

let put_u32 b v = Buffer.add_int32_be b (Int32.of_int v)

let put_i64 b v = Buffer.add_int64_be b (Int64.of_int v)

let put_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_opt put b = function
  | None -> put_u8 b 0
  | Some v ->
      put_u8 b 1;
      put b v

let tag_ping = 0x01
let tag_solve = 0x02
let tag_shutdown = 0x03
let tag_pong = 0x81
let tag_result = 0x82
let tag_rejected = 0x83
let tag_error = 0x84
let tag_update = 0x85
let tag_interrupted = 0x86

let put_overrides b o =
  put_opt put_f64 b o.o_time_limit;
  put_opt put_f64 b o.o_rel_gap;
  put_opt (fun b v -> put_u32 b v) b o.o_workers;
  put_opt (fun b v -> put_u32 b v) b o.o_seed;
  put_opt put_f64 b o.o_deadline_s;
  put_opt put_bool b o.o_presolve;
  put_opt put_string b o.o_heuristic;
  put_opt put_string b o.o_cuts;
  put_opt (fun b v -> put_u32 b v) b o.o_cut_max_applied;
  put_opt (fun b v -> put_u32 b v) b o.o_cut_max_age;
  put_opt (fun b v -> put_u32 b v) b o.o_cut_pool_size;
  put_opt put_f64 b o.o_cut_min_violation;
  put_bool b o.o_stream

let encode_request r =
  let b = Buffer.create 256 in
  (match r with
  | Ping -> put_u8 b tag_ping
  | Shutdown -> put_u8 b tag_shutdown
  | Solve { payload; overrides } ->
      put_u8 b tag_solve;
      (match payload with
      | Lp text ->
          put_u8 b 0;
          put_string b text
      | Workload { name; kstar } ->
          put_u8 b 1;
          put_string b name;
          put_u32 b kstar);
      put_overrides b overrides);
  Buffer.to_bytes b

let encode_response r =
  let b = Buffer.create 64 in
  (match r with
  | Pong { version; workers; sessions } ->
      put_u8 b tag_pong;
      put_string b version;
      put_u32 b workers;
      put_u32 b sessions
  | Result ri ->
      put_u8 b tag_result;
      put_string b ri.r_status;
      put_f64 b ri.r_objective;
      put_f64 b ri.r_bound;
      put_i64 b ri.r_nodes;
      put_i64 b ri.r_lp_iterations;
      put_f64 b ri.r_solve_time_s;
      put_u32 b ri.r_workers;
      put_bool b ri.r_cache_hit
  | Update { u_objective; u_bound; u_elapsed_s } ->
      put_u8 b tag_update;
      put_f64 b u_objective;
      put_f64 b u_bound;
      put_f64 b u_elapsed_s
  | Interrupted { i_objective; i_bound; i_has_incumbent } ->
      put_u8 b tag_interrupted;
      put_f64 b i_objective;
      put_f64 b i_bound;
      put_bool b i_has_incumbent
  | Rejected reason ->
      put_u8 b tag_rejected;
      put_string b reason
  | Error_msg msg ->
      put_u8 b tag_error;
      put_string b msg);
  Buffer.to_bytes b

(* ---- decoding ---- *)

exception Bad of string

type cursor = { buf : Bytes.t; mutable pos : int }

let need c n =
  if c.pos + n > Bytes.length c.buf then raise (Bad "truncated frame")

let get_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_be c.buf c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then raise (Bad "negative length") else v

let get_i64 c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_be c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let get_f64 c =
  need c 8;
  let v = Int64.float_of_bits (Bytes.get_int64_be c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let get_bool c = get_u8 c <> 0

let get_string c =
  let n = get_u32 c in
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_opt get c = if get_u8 c = 0 then None else Some (get c)

let get_overrides c =
  let o_time_limit = get_opt get_f64 c in
  let o_rel_gap = get_opt get_f64 c in
  let o_workers = get_opt get_u32 c in
  let o_seed = get_opt get_u32 c in
  let o_deadline_s = get_opt get_f64 c in
  let o_presolve = get_opt get_bool c in
  let o_heuristic = get_opt get_string c in
  let o_cuts = get_opt get_string c in
  let o_cut_max_applied = get_opt get_u32 c in
  let o_cut_max_age = get_opt get_u32 c in
  let o_cut_pool_size = get_opt get_u32 c in
  let o_cut_min_violation = get_opt get_f64 c in
  let o_stream = get_bool c in
  {
    o_time_limit;
    o_rel_gap;
    o_workers;
    o_seed;
    o_deadline_s;
    o_presolve;
    o_heuristic;
    o_cuts;
    o_cut_max_applied;
    o_cut_max_age;
    o_cut_pool_size;
    o_cut_min_violation;
    o_stream;
  }

let finish c v =
  if c.pos <> Bytes.length c.buf then Error "trailing bytes in frame" else Ok v

let decode_request bytes =
  let c = { buf = bytes; pos = 0 } in
  try
    match get_u8 c with
    | t when t = tag_ping -> finish c Ping
    | t when t = tag_shutdown -> finish c Shutdown
    | t when t = tag_solve ->
        let payload =
          match get_u8 c with
          | 0 -> Lp (get_string c)
          | 1 ->
              let name = get_string c in
              let kstar = get_u32 c in
              Workload { name; kstar }
          | k -> raise (Bad (Printf.sprintf "unknown solve payload kind %d" k))
        in
        let overrides = get_overrides c in
        finish c (Solve { payload; overrides })
    | t -> Error (Printf.sprintf "unknown request tag 0x%02x" t)
  with Bad m -> Error m

let decode_response bytes =
  let c = { buf = bytes; pos = 0 } in
  try
    match get_u8 c with
    | t when t = tag_pong ->
        let version = get_string c in
        let workers = get_u32 c in
        let sessions = get_u32 c in
        finish c (Pong { version; workers; sessions })
    | t when t = tag_result ->
        let r_status = get_string c in
        let r_objective = get_f64 c in
        let r_bound = get_f64 c in
        let r_nodes = get_i64 c in
        let r_lp_iterations = get_i64 c in
        let r_solve_time_s = get_f64 c in
        let r_workers = get_u32 c in
        let r_cache_hit = get_bool c in
        finish c
          (Result
             {
               r_status;
               r_objective;
               r_bound;
               r_nodes;
               r_lp_iterations;
               r_solve_time_s;
               r_workers;
               r_cache_hit;
             })
    | t when t = tag_update ->
        let u_objective = get_f64 c in
        let u_bound = get_f64 c in
        let u_elapsed_s = get_f64 c in
        finish c (Update { u_objective; u_bound; u_elapsed_s })
    | t when t = tag_interrupted ->
        let i_objective = get_f64 c in
        let i_bound = get_f64 c in
        let i_has_incumbent = get_bool c in
        finish c (Interrupted { i_objective; i_bound; i_has_incumbent })
    | t when t = tag_rejected -> finish c (Rejected (get_string c))
    | t when t = tag_error -> finish c (Error_msg (get_string c))
    | t -> Error (Printf.sprintf "unknown response tag 0x%02x" t)
  with Bad m -> Error m

(* ---- framing on a file descriptor ---- *)

let write_all fd bytes =
  let n = Bytes.length bytes in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd bytes !off (n - !off) in
    if w = 0 then raise (Bad "short write");
    off := !off + w
  done

let send fd payload =
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Bytes.length payload));
  (* One write for header + payload: frames from different threads must
     not interleave mid-frame (callers still serialize whole frames). *)
  write_all fd (Bytes.cat hdr payload)

let read_exact fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  (try
     while !off < n do
       let r = Unix.read fd buf !off (n - !off) in
       if r = 0 then raise Exit;
       off := !off + r
     done
   with Exit -> ());
  if !off = 0 && n > 0 then None
  else if !off < n then raise (Bad "truncated frame on socket")
  else Some buf

let recv fd =
  match read_exact fd 4 with
  | None -> Ok None
  | Some hdr ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then
        Error (Printf.sprintf "bad frame length %d" len)
      else (
        match read_exact fd len with
        | None -> Error "connection closed mid-frame"
        | Some payload -> Ok (Some payload))

let recv_exn fd =
  match recv fd with
  | Ok v -> v
  | Error m -> raise (Bad m)
