(** The archexd wire protocol: length-prefixed binary frames.

    Every frame on the socket is [u32 BE payload length][payload]; the
    payload's first byte is a tag.  Integers are big-endian, floats
    travel as IEEE-754 bit patterns (so [infinity] bounds round-trip
    exactly), strings are length-prefixed, options carry a presence
    byte.

    Frame catalogue:

    {v
    tag   direction  frame
    0x01  -> daemon  Ping
    0x02  -> daemon  Solve (LP text or named workload + overrides)
    0x03  -> daemon  Shutdown (drain and exit)
    0x81  <- daemon  Pong (version, workers, cached sessions)
    0x82  <- daemon  Result (status, objective, bound, tallies)
    0x83  <- daemon  Rejected (admission queue full — back off)
    0x84  <- daemon  Error (parse/encode failure, unknown workload)
    0x85  <- daemon  Update (streaming incumbent/bound improvement)
    0x86  <- daemon  Interrupted (shutdown drained this solve)
    v}

    A [Solve] is answered by any number of [Update] frames (when
    streaming was requested) followed by exactly one terminal frame:
    [Result], [Rejected], [Error] or [Interrupted]. *)

type solve_payload =
  | Lp of string
      (** An LP-format model ({!Milp.Lp_format} subset); solved at the
          MILP layer, no session cache. *)
  | Workload of { name : string; kstar : int }
      (** A named scenario from {!Workload}; served from the
          template-keyed session cache. *)

type overrides = {
  o_time_limit : float option;
  o_rel_gap : float option;
  o_workers : int option;  (** [0] = auto-detect on the daemon. *)
  o_seed : int option;
  o_deadline_s : float option;
      (** Wall-clock budget for this request, in seconds from receipt,
          enforced on the daemon's monotonic {!Milp.Clock}. *)
  o_presolve : bool option;
      (** Toggle the presolve reduction stack for this request; [None]
          keeps the daemon default.  A warm cached session whose
          presolve setting changes resets its recorded reduction trace
          ({!Archex.Session.reconfigure}). *)
  o_heuristic : string option;
      (** Primal matheuristic mode for this request: ["tabu"] or
          ["off"]; [None] keeps the daemon default. *)
  o_cuts : string option;
      (** Cut families to separate, in the
          {!Milp.Cuts.families_of_string} spelling (["all"], ["none"],
          ["gmi,cover,..."]); parsed on the daemon, a bad list rejects
          the request.  [None] keeps the daemon default. *)
  o_cut_max_applied : int option;  (** Cut rows appended per round. *)
  o_cut_max_age : int option;  (** Pool eviction age, in rounds. *)
  o_cut_pool_size : int option;  (** Managed pool capacity. *)
  o_cut_min_violation : float option;
      (** Root application threshold; node separation uses 10x this. *)
  o_stream : bool;  (** Request [Update] frames. *)
}

val no_overrides : overrides

type request =
  | Ping
  | Solve of { payload : solve_payload; overrides : overrides }
  | Shutdown

type result_info = {
  r_status : string;  (** {!Milp.Status.mip_status_to_string}. *)
  r_objective : float;
  r_bound : float;
  r_nodes : int;
  r_lp_iterations : int;
  r_solve_time_s : float;
  r_workers : int;  (** Resolved worker count the search used. *)
  r_cache_hit : bool;  (** Served from a warm cached session. *)
}

type response =
  | Pong of { version : string; workers : int; sessions : int }
  | Result of result_info
  | Update of { u_objective : float; u_bound : float; u_elapsed_s : float }
  | Interrupted of { i_objective : float; i_bound : float; i_has_incumbent : bool }
  | Rejected of string
  | Error_msg of string

val encode_request : request -> Bytes.t
(** Payload bytes of a request frame (no length prefix). *)

val decode_request : Bytes.t -> (request, string) result
(** Inverse of {!encode_request}; rejects unknown tags, truncated
    payloads and trailing bytes. *)

val encode_response : response -> Bytes.t

val decode_response : Bytes.t -> (response, string) result

exception Bad of string
(** Framing failure on a socket (short write, truncated frame). *)

val send : Unix.file_descr -> Bytes.t -> unit
(** Write one frame (length prefix + payload) with a single [write]
    per frame.  Callers sharing a descriptor across threads must still
    serialize whole frames.  @raise Bad on short writes. *)

val recv : Unix.file_descr -> (Bytes.t option, string) result
(** Read one frame's payload.  [Ok None] = clean EOF before a frame;
    [Error _] = oversized/negative length or mid-frame EOF. *)

val recv_exn : Unix.file_descr -> Bytes.t option
(** {!recv}, raising {!Bad} instead of returning [Error]. *)

val max_frame : int
(** Upper bound on accepted payload length (64 MiB). *)
