(* Template-keyed LRU cache of warm solver sessions.

   A cached value is stateful and must be used by one request at a
   time, so the API is checkout/checkin rather than find: checkout
   hands the value out exclusively (a second request for the same key
   blocks until checkin — serializing on the warm session is exactly
   what makes it warm), and checkin returns it, moving the entry to
   the front of the LRU order.  Eviction only considers idle entries;
   a checked-out value is never dropped under its user.

   [capacity = 0] is the cold mode used by the bench baseline: every
   checkout builds a fresh value and checkin discards it. *)

type ('k, 'v) entry = {
  e_key : 'k;
  mutable e_value : 'v option;  (* None while checked out *)
  mutable e_stamp : int;  (* LRU clock at last use *)
}

type ('k, 'v) t = {
  capacity : int;
  lock : Mutex.t;
  cond : Condition.t;
  mutable entries : ('k, 'v) entry list;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Session_cache.create: capacity must be >= 0";
  {
    capacity;
    lock = Mutex.create ();
    cond = Condition.create ();
    entries = [];
    clock = 0;
    hits = 0;
    misses = 0;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* Drop the stalest idle entries until at most [capacity] remain.
   Checked-out entries ([e_value = None]) are pinned. *)
let evict_to_capacity t =
  let n = List.length t.entries in
  if n > t.capacity then begin
    let idle, pinned = List.partition (fun e -> e.e_value <> None) t.entries in
    let idle =
      List.sort (fun a b -> compare b.e_stamp a.e_stamp) idle (* freshest first *)
    in
    let keep = max 0 (t.capacity - List.length pinned) in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    t.entries <- pinned @ take keep idle
  end

let checkout t key ~create:build =
  if t.capacity = 0 then begin
    Mutex.lock t.lock;
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock;
    (build (), false)
  end
  else begin
    Mutex.lock t.lock;
    let rec claim () =
      match List.find_opt (fun e -> e.e_key = key) t.entries with
      | Some e -> (
          match e.e_value with
          | Some v ->
              e.e_value <- None;
              e.e_stamp <- tick t;
              t.hits <- t.hits + 1;
              Mutex.unlock t.lock;
              (v, true)
          | None ->
              (* Checked out by another request: wait for its checkin
                 (or for the entry to be withdrawn on failure). *)
              Condition.wait t.cond t.lock;
              claim ())
      | None ->
          let e = { e_key = key; e_value = None; e_stamp = tick t } in
          t.entries <- e :: t.entries;
          t.misses <- t.misses + 1;
          Mutex.unlock t.lock;
          (* Build outside the lock: encoding a template can take a
             while and must not stall unrelated checkouts.  The pinned
             placeholder keeps concurrent requests for this key waiting
             above instead of double-building. *)
          (try build ()
           with ex ->
             Mutex.lock t.lock;
             t.entries <- List.filter (fun e' -> e' != e) t.entries;
             Condition.broadcast t.cond;
             Mutex.unlock t.lock;
             raise ex)
          |> fun v -> (v, false)
    in
    claim ()
  end

let checkin t key v =
  if t.capacity = 0 then ()
  else begin
    Mutex.lock t.lock;
    (match List.find_opt (fun e -> e.e_key = key) t.entries with
    | Some e ->
        e.e_value <- Some v;
        e.e_stamp <- tick t
    | None ->
        t.entries <- { e_key = key; e_value = Some v; e_stamp = tick t } :: t.entries);
    evict_to_capacity t;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock
  end

let discard t key =
  if t.capacity > 0 then begin
    Mutex.lock t.lock;
    t.entries <- List.filter (fun e -> e.e_key <> key) t.entries;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock
  end

let length t =
  Mutex.lock t.lock;
  let n = List.length t.entries in
  Mutex.unlock t.lock;
  n

let stats t =
  Mutex.lock t.lock;
  let r = (t.hits, t.misses) in
  Mutex.unlock t.lock;
  r
