(** Template-keyed LRU cache of warm, stateful values (solver
    sessions).

    Cached values are mutable and single-user, so the interface is
    exclusive checkout/checkin: {!checkout} hands the value of a key to
    exactly one caller at a time (a concurrent checkout of the same key
    blocks until the holder checks it back in — serializing on the warm
    session is what makes it warm), and {!checkin} returns it, marking
    the entry most-recently used.  Eviction drops the stalest idle
    entries only; checked-out values are pinned.

    [capacity = 0] disables caching entirely (the bench cold baseline):
    every checkout builds fresh, checkin discards. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument on negative capacity. *)

val checkout : ('k, 'v) t -> 'k -> create:(unit -> 'v) -> 'v * bool
(** [checkout t key ~create] returns [(value, hit)].  [hit = true]
    means a warm cached value; [false] means [create] built it (the
    build runs outside the cache lock; concurrent requests for the
    same key wait rather than double-build).  If [create] raises, the
    placeholder is withdrawn and the exception propagates. *)

val checkin : ('k, 'v) t -> 'k -> 'v -> unit
(** Return a checked-out value (or insert a fresh one), making it
    most-recently used and waking blocked checkouts.  May evict the
    stalest idle entries down to capacity. *)

val discard : ('k, 'v) t -> 'k -> unit
(** Drop an entry instead of checking it back in (e.g. the session is
    poisoned by a failed solve). *)

val length : ('k, 'v) t -> int

val stats : ('k, 'v) t -> int * int
(** [(hits, misses)] since creation. *)
