(* Thin view over the process-global scenario registry
   ({!Archex.Scenario}).

   A [Workload] request addresses a registry entry by name; the name is
   also the session-cache key, so repeated requests for the same entry
   reuse the warm session (path pools, cut carry, presolve trace,
   incumbent).  The registry always holds the Table-1 catalogue
   (registered by [Archex.Scenario] at module init); daemons that want
   the generated tactical families call
   [Scenario_gen.register_defaults] before [Daemon.run] — no server
   code changes needed to serve new scenarios. *)

type t = Archex.Scenario.t

let names = Archex.Scenario.names

let find = Archex.Scenario.find

let instance = Archex.Scenario.instance

let name = Archex.Scenario.name

let descr = Archex.Scenario.descr
