(* Named scenario catalogue for daemon requests.

   A [Workload] request addresses an entry here by name; the name is
   also the session-cache key, so repeated requests for the same entry
   reuse the warm session (path pools, cut carry, presolve trace,
   incumbent).  The catalogue mirrors the paper's Table 1 — the
   data-collection WSN under the three objectives ($, Energy,
   $+Energy) — at two sizes: the bench scale
   ({!Archex.Scenarios.default_data_collection}) and the test scale
   used by the parallel regression suite (3 sensors on a 3x2 relay
   grid), which keeps CI smoke and throughput benches fast. *)

module Scenarios = Archex.Scenarios
module Objective = Archex.Objective

type t = {
  w_name : string;
  w_descr : string;
  w_params : Scenarios.data_collection_params;
  w_objective : Objective.t;
}

let small_params =
  {
    Scenarios.default_data_collection with
    Scenarios.dc_sensors = 3;
    dc_relay_grid = (3, 2);
    dc_width = 45.;
    dc_height = 28.;
  }

let objectives =
  [
    ("dollar", "$ cost", Objective.dollar);
    ("energy", "energy", Objective.energy);
    ("mixed", "$ + energy", Objective.combine Objective.dollar Objective.energy);
  ]

let catalogue =
  List.concat_map
    (fun (suffix, label, objective) ->
      [
        {
          w_name = "dc-" ^ suffix;
          w_descr = "Table 1 data collection, objective " ^ label;
          w_params = Scenarios.default_data_collection;
          w_objective = objective;
        };
        {
          w_name = "dc-small-" ^ suffix;
          w_descr = "Table 1 data collection (test scale), objective " ^ label;
          w_params = small_params;
          w_objective = objective;
        };
      ])
    objectives

let names () = List.map (fun w -> w.w_name) catalogue

let find name =
  match List.find_opt (fun w -> w.w_name = name) catalogue with
  | Some w -> Ok w
  | None ->
      Error
        (Printf.sprintf "unknown workload %S (known: %s)" name
           (String.concat ", " (names ())))

let instance w = Scenarios.data_collection ~objective:w.w_objective w.w_params
