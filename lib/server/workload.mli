(** Thin view over the process-global scenario registry
    ({!Archex.Scenario}) — kept so the daemon code keeps reading
    "workload" where it means "named scenario a request can address".

    The registry always holds the Table-1 catalogue: [dc-dollar],
    [dc-energy], [dc-mixed] (bench scale) and [dc-small-dollar],
    [dc-small-energy], [dc-small-mixed] (the parallel-regression test
    scale used by CI smoke and the throughput bench).  Daemons that
    register more scenarios (e.g. via [Scenario_gen.register_defaults])
    serve them by name with no server changes.  The workload name
    doubles as the daemon's session-cache key. *)

type t = Archex.Scenario.t

val names : unit -> string list

val find : string -> (t, string) result

val instance : t -> (Archex.Instance.t, string) result

val name : t -> string

val descr : t -> string
