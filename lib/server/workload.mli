(** Named scenario catalogue for daemon requests.

    The catalogue mirrors the paper's Table 1 — the data-collection
    WSN under the three objectives — at two sizes.  Names:
    [dc-dollar], [dc-energy], [dc-mixed] (bench scale) and
    [dc-small-dollar], [dc-small-energy], [dc-small-mixed] (the
    parallel-regression test scale used by CI smoke and the
    throughput bench).  The workload name doubles as the daemon's
    session-cache key. *)

type t = {
  w_name : string;
  w_descr : string;
  w_params : Archex.Scenarios.data_collection_params;
  w_objective : Archex.Objective.t;
}

val catalogue : t list

val names : unit -> string list

val find : string -> (t, string) result

val instance : t -> (Archex.Instance.t, string) result
