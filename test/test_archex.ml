(* Tests for the core library: templates, requirements, instances,
   Algorithm 1 (path generation), the two MILP encodings, end-to-end
   solving, and solution extraction/validation.  Integration tests use
   tiny instances so the whole suite stays fast. *)

open Archex

let qt = QCheck_alcotest.to_alcotest

let p = Geometry.Point.make

let node ?(fixed = false) name role loc = { Template.name; role; loc; fixed }

let sensor = Components.Component.Sensor

let relay = Components.Component.Relay

let sink = Components.Component.Sink

let anchor = Components.Component.Anchor

(* A small open-space template: 2 sensors, 3 relay candidates, 1 sink. *)
let small_template () =
  Template.create
    [
      node ~fixed:true "s0" sensor (p 0. 0.);
      node ~fixed:true "s1" sensor (p 0. 10.);
      node ~fixed:true "sink" sink (p 30. 5.);
      node "r0" relay (p 10. 5.);
      node "r1" relay (p 16. 2.);
      node "r2" relay (p 22. 5.);
    ]

let small_requirements ?(replicas = 1) ?(snr = 10.) ?(lifetime = None) () =
  let r = Requirements.empty in
  let r = Requirements.add_route ~replicas r ~src:0 ~dst:2 in
  let r = Requirements.add_route ~replicas r ~src:1 ~dst:2 in
  { r with Requirements.min_snr_db = Some snr; min_lifetime_years = lifetime }

let small_instance ?replicas ?snr ?lifetime ?(objective = Objective.dollar) () =
  Instance.create_exn
    ~template:(small_template ())
    ~library:Components.Library.builtin ~channel:Radio.Channel.log_distance_2_4ghz
    ~requirements:(small_requirements ?replicas ?snr ?lifetime ())
    ~objective ()

(* ------------------------------------------------------------------ *)
(* Template                                                            *)
(* ------------------------------------------------------------------ *)

let test_template_basics () =
  let t = small_template () in
  Alcotest.(check int) "nodes" 6 (Template.nnodes t);
  Alcotest.(check (option int)) "index" (Some 2) (Template.index_of t "sink");
  Alcotest.(check (option int)) "missing" None (Template.index_of t "zzz");
  Alcotest.(check (list int)) "sensors" [ 0; 1 ] (Template.find_role t sensor);
  Alcotest.(check (list int)) "fixed" [ 0; 1; 2 ] (Template.fixed_indices t)

let test_template_rejects_duplicates () =
  Alcotest.(check bool) "duplicate name" true
    (try
       ignore (Template.create [ node "x" relay (p 0. 0.); node "x" relay (p 1. 1.) ]);
       false
     with Invalid_argument _ -> true)

let test_template_link_roles () =
  let t = small_template () in
  let pl = Radio.Channel.path_loss_matrix Radio.Channel.log_distance_2_4ghz (Template.locations t) in
  let g = Template.candidate_links t ~pl in
  (* No edges into sensors, none out of the sink. *)
  Alcotest.(check int) "sensor in-degree" 0 (Netgraph.Digraph.in_degree g 0);
  Alcotest.(check int) "sink out-degree" 0 (Netgraph.Digraph.out_degree g 2);
  Alcotest.(check bool) "relay-relay exists" true (Netgraph.Digraph.mem_edge g 3 4)

let test_template_max_path_loss_prunes () =
  let t = small_template () in
  let pl = Radio.Channel.path_loss_matrix Radio.Channel.log_distance_2_4ghz (Template.locations t) in
  let loose = Template.candidate_links ~max_path_loss:200. t ~pl in
  let tight = Template.candidate_links ~max_path_loss:70. t ~pl in
  Alcotest.(check bool) "pruning reduces edges" true
    (Netgraph.Digraph.nedges tight < Netgraph.Digraph.nedges loose)

(* ------------------------------------------------------------------ *)
(* Requirements                                                        *)
(* ------------------------------------------------------------------ *)

let test_requirements_validate () =
  let ok r = Alcotest.(check bool) "valid" true (Result.is_ok (Requirements.validate r ~nnodes:6)) in
  let bad r = Alcotest.(check bool) "invalid" true (Result.is_error (Requirements.validate r ~nnodes:6)) in
  ok (small_requirements ());
  bad (Requirements.add_route Requirements.empty ~src:0 ~dst:9);
  bad (Requirements.add_route Requirements.empty ~src:3 ~dst:3);
  bad (Requirements.add_route ~replicas:0 Requirements.empty ~src:0 ~dst:2);
  bad { Requirements.empty with Requirements.max_ber = Some 0.9 };
  bad { Requirements.empty with Requirements.min_lifetime_years = Some (-1.) };
  bad
    {
      Requirements.empty with
      Requirements.localization =
        Some { Requirements.min_anchors = 3; loc_min_rss_dbm = -80.; eval_points = [||] };
    }

let test_requirements_total_paths () =
  Alcotest.(check int) "2 + 2" 4 (Requirements.total_path_count (small_requirements ~replicas:2 ()))

(* ------------------------------------------------------------------ *)
(* Instance                                                            *)
(* ------------------------------------------------------------------ *)

let test_instance_validates_library () =
  let lib = Components.Library.of_list_exn
      [ Components.Component.make ~name:"only-relay" ~role:relay ~cost:1. () ] in
  match
    Instance.create ~template:(small_template ()) ~library:lib
      ~channel:Radio.Channel.log_distance_2_4ghz ~requirements:(small_requirements ())
      ~objective:Objective.dollar ()
  with
  | Error e -> Alcotest.(check bool) "mentions missing role" true
      (Astring.String.is_infix ~affix:"no device" e)
  | Ok _ -> Alcotest.fail "expected missing-role error"

let test_instance_min_snr_combination () =
  (* max of explicit SNR, RSS-derived and BER-derived floors. *)
  let template = small_template () in
  let reqs =
    { (small_requirements ~snr:5. ()) with Requirements.min_rss_dbm = Some (-85.) }
  in
  let inst =
    Instance.create_exn ~template ~library:Components.Library.builtin
      ~channel:Radio.Channel.log_distance_2_4ghz ~requirements:reqs ~objective:Objective.dollar ()
  in
  (* RSS -85 over noise -100 gives 15 dB > explicit 5 dB. *)
  Alcotest.(check (float 1e-9)) "snr floor" 15. (Instance.min_snr_db inst)

let test_instance_etx_bound () =
  let inst = small_instance ~snr:20. () in
  let e = Instance.etx_bound inst in
  Alcotest.(check bool) "clean threshold ~1" true (e >= 1. && e < 1.01);
  let inst2 = small_instance ~snr:1. () in
  Alcotest.(check bool) "dirty threshold larger" true (Instance.etx_bound inst2 > e)

let test_instance_devices_for () =
  let inst = small_instance () in
  let devs = Instance.devices_for inst 0 in
  Alcotest.(check bool) "sensor devices only" true
    (devs <> []
    && List.for_all (fun (_, c) -> c.Components.Component.role = sensor) devs)

let test_instance_latency_hop_bound () =
  (* Superframe = 16 ms; 50 ms deadline -> at most 3 hops. *)
  let reqs =
    { (Requirements.add_route ~max_latency_s:0.05 Requirements.empty ~src:0 ~dst:2) with
      Requirements.min_snr_db = Some 5. }
  in
  let inst =
    Instance.create_exn ~template:(small_template ()) ~library:Components.Library.builtin
      ~channel:Radio.Channel.log_distance_2_4ghz ~requirements:reqs ~objective:Objective.dollar ()
  in
  match inst.Instance.requirements.Requirements.routes with
  | [ r ] -> (
      match Instance.effective_hop_bounds inst r with
      | [ { Requirements.hop_sense = `Le; hops } ] -> Alcotest.(check int) "3 hops" 3 hops
      | _ -> Alcotest.fail "expected one derived bound")
  | _ -> Alcotest.fail "expected one route"

(* ------------------------------------------------------------------ *)
(* Path generation (Algorithm 1)                                       *)
(* ------------------------------------------------------------------ *)

let test_pathgen_produces_pools () =
  let inst = small_instance ~replicas:2 () in
  match Path_gen.generate ~kstar:4 inst with
  | Error e -> Alcotest.fail e
  | Ok { pools; _ } ->
      Alcotest.(check int) "one pool per route" 2 (List.length pools);
      List.iter
        (fun pool ->
          Alcotest.(check bool) "pool non-empty" true (pool.Path_gen.pool <> []);
          List.iter
            (fun path ->
              Alcotest.(check bool) "valid path" true
                (Netgraph.Path.is_valid inst.Instance.graph path);
              Alcotest.(check (option int)) "right source" (Some pool.Path_gen.src)
                (Netgraph.Path.source path);
              Alcotest.(check (option int)) "right destination" (Some pool.Path_gen.dst)
                (Netgraph.Path.destination path))
            pool.Path_gen.pool)
        pools

let test_pathgen_disjoint_capacity () =
  let inst = small_instance ~replicas:2 () in
  match Path_gen.generate ~kstar:4 inst with
  | Error e -> Alcotest.fail e
  | Ok { pools; _ } ->
      List.iter
        (fun pool ->
          (* The pool must contain at least 2 mutually edge-disjoint
             paths (the replica requirement). *)
          let rec greedy chosen = function
            | [] -> List.length chosen
            | q :: rest ->
                if List.for_all (fun c -> Netgraph.Path.edge_disjoint q c) chosen then
                  greedy (q :: chosen) rest
                else greedy chosen rest
          in
          Alcotest.(check bool) "2 disjoint available" true (greedy [] pool.Path_gen.pool >= 2))
        pools

let test_pathgen_pool_distinct () =
  let inst = small_instance () in
  match Path_gen.generate ~kstar:6 inst with
  | Error e -> Alcotest.fail e
  | Ok { pools; _ } ->
      List.iter
        (fun pool ->
          let n = List.length pool.Path_gen.pool in
          let d = List.length (List.sort_uniq compare pool.Path_gen.pool) in
          Alcotest.(check int) "no duplicate candidates" n d)
        pools

let test_pathgen_hop_bound_filter () =
  let reqs =
    {
      (Requirements.add_route
         ~hop_bounds:[ { Requirements.hop_sense = `Le; hops = 1 } ]
         Requirements.empty ~src:0 ~dst:2)
      with
      Requirements.min_snr_db = Some (-20.) (* allow the long direct hop *);
    }
  in
  let inst =
    Instance.create_exn ~template:(small_template ()) ~library:Components.Library.builtin
      ~channel:Radio.Channel.log_distance_2_4ghz ~requirements:reqs ~objective:Objective.dollar ()
  in
  match Path_gen.generate ~kstar:8 inst with
  | Error e -> Alcotest.fail e
  | Ok { pools; _ } ->
      List.iter
        (fun pool ->
          List.iter
            (fun path ->
              Alcotest.(check bool) "1 hop max" true (Netgraph.Path.length path <= 1))
            pool.Path_gen.pool)
        pools

let test_pathgen_lq_filter_drops () =
  (* With a brutal SNR requirement nothing is reachable. *)
  let inst = small_instance ~snr:80. () in
  match Path_gen.generate ~kstar:4 inst with
  | Error e ->
      Alcotest.(check bool) "explains missing candidates" true
        (Astring.String.is_infix ~affix:"no feasible candidate" e)
  | Ok _ -> Alcotest.fail "expected failure under 80 dB SNR requirement"

let test_pathgen_best_case_rss () =
  let inst = small_instance () in
  (* best case includes the strongest sensor option (4.5 dBm + 3 dBi)
     and the best receiver gain at a relay (3 dBi). *)
  let rss = Path_gen.best_case_rss inst 0 3 in
  let pl = inst.Instance.pl.(0).(3) in
  Alcotest.(check (float 1e-9)) "budget arithmetic" (-.pl +. 7.5 +. 3.) rss

let test_pathgen_localization_candidates () =
  let template =
    Template.create
      [ node "a0" anchor (p 0. 0.); node "a1" anchor (p 5. 0.); node "a2" anchor (p 20. 0.) ]
  in
  let reqs =
    {
      Requirements.empty with
      Requirements.localization =
        Some
          {
            Requirements.min_anchors = 1;
            loc_min_rss_dbm = -90.;
            eval_points = [| p 1. 0. |];
          };
    }
  in
  let inst =
    Instance.create_exn ~template ~library:Components.Library.builtin
      ~channel:Radio.Channel.log_distance_2_4ghz ~requirements:reqs ~objective:Objective.dollar ()
  in
  match Path_gen.localization_candidates inst ~kstar:2 with
  | [ (0, cands) ] ->
      Alcotest.(check int) "two nearest" 2 (List.length cands);
      Alcotest.(check bool) "farthest excluded" true (not (List.mem 2 cands))
  | _ -> Alcotest.fail "expected one eval point"

(* ------------------------------------------------------------------ *)
(* Encodings                                                           *)
(* ------------------------------------------------------------------ *)

let test_encoding_sizes () =
  let inst = small_instance ~replicas:2 () in
  match (Solve.encode_size inst Solve.Full_enum, Solve.encode_size inst (Solve.approx ~kstar:3 ())) with
  | Ok (fv, fc), Ok (av, ac) ->
      Alcotest.(check bool) "approx much smaller (vars)" true (av * 2 < fv);
      Alcotest.(check bool) "approx much smaller (cons)" true (ac * 2 < fc)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_encoding_kstar_grows () =
  let inst = small_instance ~replicas:2 () in
  match
    (Solve.encode_size inst (Solve.approx ~kstar:2 ()), Solve.encode_size inst (Solve.approx ~kstar:6 ()))
  with
  | Ok (v2, _), Ok (v6, _) -> Alcotest.(check bool) "larger K* -> more vars" true (v6 >= v2)
  | Error e, _ | _, Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* End-to-end solving                                                  *)
(* ------------------------------------------------------------------ *)

(* One config per strategy; everything else at defaults + a test cap. *)
let config strategy =
  Solver_config.(default |> with_strategy strategy |> with_time_limit 60.)

let run_ok inst strategy =
  match Solve.run (config strategy) inst with
  | Ok ({ Outcome.solution = Some sol; _ } as out) -> (out, sol)
  | Ok { Outcome.status; _ } ->
      Alcotest.fail ("no solution: " ^ Milp.Status.mip_status_to_string status)
  | Error e -> Alcotest.fail e

let test_solve_approx_small () =
  let inst = small_instance () in
  let _, sol = run_ok inst (Solve.approx ~kstar:3 ()) in
  (match Solution.check inst sol with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs));
  Alcotest.(check int) "both routes extracted" 2 (List.length sol.Solution.routes);
  Alcotest.(check bool) "cost positive" true (sol.Solution.dollar_cost > 0.)

let test_solve_full_matches_or_beats_approx () =
  (* The approximate encoding restricts routing choices, so its optimum
     can never beat the exhaustive one. *)
  let inst = small_instance () in
  let outf, solf = run_ok inst Solve.Full_enum in
  let outa, sola = run_ok inst (Solve.approx ~kstar:3 ()) in
  Alcotest.(check bool) "full solved" true (outf.Outcome.status = Milp.Status.Mip_optimal);
  Alcotest.(check bool) "approx solved" true (outa.Outcome.status = Milp.Status.Mip_optimal);
  Alcotest.(check bool)
    (Printf.sprintf "full (%.1f) <= approx (%.1f)" solf.Solution.dollar_cost sola.Solution.dollar_cost)
    true
    (solf.Solution.dollar_cost <= sola.Solution.dollar_cost +. 1e-6);
  match Solution.check inst solf with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs)

let test_solve_disjoint_replicas () =
  let inst = small_instance ~replicas:2 () in
  let _, sol = run_ok inst (Solve.approx ~kstar:6 ()) in
  (match Solution.check inst sol with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs));
  Alcotest.(check int) "four paths" 4 (List.length sol.Solution.routes);
  (* Check disjointness directly too. *)
  List.iter
    (fun req ->
      let paths =
        List.filter_map
          (fun rr -> if rr.Solution.rr_req = req then Some rr.Solution.rr_path else None)
          sol.Solution.routes
      in
      match paths with
      | [ a; b ] ->
          Alcotest.(check bool) "replicas disjoint" true (Netgraph.Path.edge_disjoint a b)
      | _ -> Alcotest.fail "expected two replicas")
    [ 0; 1 ]

let test_solve_lifetime_constraint_bites () =
  (* An aggressive lifetime bound forces low-power components or fails;
     with frequent reporting the cheap relay's TX current can be too
     hungry.  We mainly check that the returned solution truly honours
     the bound according to the physics model. *)
  let proto = Energy.Tdma.make ~report_period_s:1. () in
  let inst =
    Instance.create_exn ~protocol:proto
      ~template:(small_template ())
      ~library:Components.Library.builtin ~channel:Radio.Channel.log_distance_2_4ghz
      ~requirements:(small_requirements ~lifetime:(Some 2.) ())
      ~objective:Objective.dollar ()
  in
  match Solve.run (config (Solve.approx ~kstar:4 ())) inst with
  | Ok { Outcome.solution = Some sol; _ } -> (
      match Solution.check inst sol with
      | Ok () -> ()
      | Error errs -> Alcotest.fail (String.concat "; " errs))
  | Ok _ -> () (* genuinely infeasible is acceptable for this bound *)
  | Error e -> Alcotest.fail e

let test_solve_energy_objective () =
  let inst_cost = small_instance ~objective:Objective.dollar () in
  let inst_energy = small_instance ~objective:Objective.energy () in
  let _, sol_cost = run_ok inst_cost (Solve.approx ~kstar:4 ()) in
  let _, sol_energy = run_ok inst_energy (Solve.approx ~kstar:4 ()) in
  let current sol = Solution.total_avg_current_ma sol in
  Alcotest.(check bool)
    (Printf.sprintf "energy objective saves current (%.4f <= %.4f)" (current sol_energy)
       (current sol_cost))
    true
    (current sol_energy <= current sol_cost +. 1e-9)

let test_solve_localization_end_to_end () =
  let template =
    Template.create
      (List.init 6 (fun i -> node (Printf.sprintf "a%d" i) anchor (p (float_of_int i *. 8.) 0.)))
  in
  let evals = Array.init 5 (fun i -> p (4. +. (float_of_int i *. 8.)) 1.) in
  let reqs =
    {
      Requirements.empty with
      Requirements.localization =
        Some { Requirements.min_anchors = 2; loc_min_rss_dbm = -75.; eval_points = evals };
    }
  in
  let inst =
    Instance.create_exn ~template ~library:Components.Library.builtin
      ~channel:Radio.Channel.log_distance_2_4ghz ~requirements:reqs ~objective:Objective.dollar ()
  in
  let _, sol = run_ok inst (Solve.approx ~loc_kstar:4 ()) in
  (match Solution.check inst sol with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs));
  Alcotest.(check bool) "coverage at least 2 everywhere" true
    (Array.for_all (fun c -> c >= 2) sol.Solution.reachable_counts)

let test_solution_check_catches_bad_device () =
  let inst = small_instance () in
  let _, sol = run_ok inst (Solve.approx ~kstar:3 ()) in
  (* Corrupt the solution: claim a relay device on a sensor node. *)
  let bad_dev = Components.Library.find_exn Components.Library.builtin "relay-basic" in
  let bad = { sol with Solution.devices = (0, bad_dev) :: List.remove_assoc 0 sol.Solution.devices } in
  Alcotest.(check bool) "role mismatch detected" true (Result.is_error (Solution.check inst bad))

let test_solution_check_catches_missing_fixed () =
  let inst = small_instance () in
  let _, sol = run_ok inst (Solve.approx ~kstar:3 ()) in
  let bad = { sol with Solution.used_nodes = List.filter (fun i -> i <> 0) sol.Solution.used_nodes } in
  Alcotest.(check bool) "unused fixed node detected" true (Result.is_error (Solution.check inst bad))

let test_solve_infeasible_reported () =
  (* Demand 3 disjoint paths from a sensor that can reach at most 2
     first hops within the SNR budget: should fail cleanly, either at
     generation or in the MILP. *)
  let template =
    Template.create
      [
        node ~fixed:true "s0" sensor (p 0. 0.);
        node ~fixed:true "sink" sink (p 20. 0.);
        node "r0" relay (p 10. 0.);
      ]
  in
  let reqs =
    { (Requirements.add_route ~replicas:3 Requirements.empty ~src:0 ~dst:1) with
      Requirements.min_snr_db = Some 10. }
  in
  let inst =
    Instance.create_exn ~template ~library:Components.Library.builtin
      ~channel:Radio.Channel.log_distance_2_4ghz ~requirements:reqs ~objective:Objective.dollar ()
  in
  match Solve.run (config (Solve.approx ~kstar:6 ())) inst with
  | Error _ -> () (* Algorithm 1 could not build 3 disjoint candidates *)
  | Ok { Outcome.solution = None; _ } -> ()
  | Ok { Outcome.solution = Some _; _ } -> Alcotest.fail "expected infeasibility"

(* Property: on random small templates, whenever both encodings solve
   to optimality, full <= approx, and both solutions validate. *)
let random_template_gen =
  QCheck2.Gen.(
    let* nrelays = int_range 2 4 in
    let* seed = int_range 0 1000 in
    return (nrelays, seed))

let prop_full_no_worse_than_approx =
  QCheck2.Test.make ~name:"solve: full enumeration never loses to Algorithm 1" ~count:12
    random_template_gen (fun (nrelays, seed) ->
      let rng = Random.State.make [| seed |] in
      let relays =
        List.init nrelays (fun i ->
            node
              (Printf.sprintf "r%d" i)
              relay
              (p (5. +. Random.State.float rng 20.) (Random.State.float rng 10.)))
      in
      let template =
        Template.create
          ([ node ~fixed:true "s0" sensor (p 0. 5.); node ~fixed:true "sink" sink (p 30. 5.) ]
          @ relays)
      in
      let reqs =
        { (Requirements.add_route Requirements.empty ~src:0 ~dst:1) with
          Requirements.min_snr_db = Some 8. }
      in
      let inst =
        Instance.create_exn ~template ~library:Components.Library.builtin
          ~channel:Radio.Channel.log_distance_2_4ghz ~requirements:reqs
          ~objective:Objective.dollar ()
      in
      match
        ( Solve.run (config Solve.Full_enum) inst,
          Solve.run (config (Solve.approx ~kstar:3 ())) inst )
      with
      | Ok { Outcome.solution = Some f; status = Milp.Status.Mip_optimal; _ },
        Ok { Outcome.solution = Some a; status = Milp.Status.Mip_optimal; _ } ->
          Result.is_ok (Solution.check inst f)
          && Result.is_ok (Solution.check inst a)
          && f.Solution.dollar_cost <= a.Solution.dollar_cost +. 1e-6
      | Ok { Outcome.solution = None; _ }, Ok { Outcome.solution = None; _ } -> true
      | Error _, Error _ -> true
      | _ -> true (* mixed timeouts are not failures *))


(* ------------------------------------------------------------------ *)
(* Scenarios and K* search                                             *)
(* ------------------------------------------------------------------ *)

let test_scenarios_data_collection_builds () =
  match Scenarios.data_collection Scenarios.default_data_collection with
  | Error e -> Alcotest.fail e
  | Ok inst ->
      let t = inst.Instance.template in
      Alcotest.(check int) "sensor count" Scenarios.default_data_collection.Scenarios.dc_sensors
        (List.length (Template.find_role t sensor));
      Alcotest.(check int) "one sink" 1 (List.length (Template.find_role t sink));
      Alcotest.(check int) "routes" Scenarios.default_data_collection.Scenarios.dc_sensors
        (List.length inst.Instance.requirements.Requirements.routes);
      Alcotest.(check bool) "graph connected enough" true
        (Netgraph.Digraph.nedges inst.Instance.graph > 0)

let test_scenarios_deterministic () =
  match
    ( Scenarios.data_collection Scenarios.default_data_collection,
      Scenarios.data_collection Scenarios.default_data_collection )
  with
  | Ok a, Ok b ->
      let locs t = Array.map (fun (n : Template.node) -> n.Template.loc) (Template.nodes t) in
      Alcotest.(check bool) "same node locations" true
        (locs a.Instance.template = locs b.Instance.template)
  | _ -> Alcotest.fail "scenario failed"

let test_scenarios_localization_builds () =
  match Scenarios.localization Scenarios.default_localization with
  | Error e -> Alcotest.fail e
  | Ok inst -> (
      Alcotest.(check int) "anchors only"
        (Template.nnodes inst.Instance.template)
        (List.length (Template.find_role inst.Instance.template anchor));
      match inst.Instance.requirements.Requirements.localization with
      | Some l ->
          Alcotest.(check int) "eval points" 30 (Array.length l.Requirements.eval_points)
      | None -> Alcotest.fail "no localization requirement")

let test_scenarios_scaled_sizes () =
  match Scenarios.scaled_data_collection ~total_nodes:25 ~end_devices:8 () with
  | Error e -> Alcotest.fail e
  | Ok inst ->
      (* total = sensors + sink + relay grid (grid rounds up). *)
      Alcotest.(check bool) "node count near target" true
        (abs (Template.nnodes inst.Instance.template - 25) <= 4);
      Alcotest.(check int) "end devices" 8
        (List.length (Template.find_role inst.Instance.template sensor))

let test_scenarios_scaled_rejects_bad () =
  Alcotest.(check bool) "too small" true
    (try
       ignore (Scenarios.scaled_data_collection ~total_nodes:3 ~end_devices:5 ());
       false
     with Invalid_argument _ -> true)

(* Kstar.search overrides the strategy's loc_kstar itself; the default
   strategy is fine here. *)
let kstar_config = Solver_config.(default |> with_time_limit 60.)

let test_kstar_search_improves () =
  let inst = small_instance () in
  let r = Kstar.search ~schedule:[ 1; 3 ] kstar_config inst in
  Alcotest.(check bool) "at least one step" true (r.Kstar.steps <> []);
  (match r.Kstar.best with
  | Some (_, sol) ->
      Alcotest.(check bool) "best validates" true (Result.is_ok (Solution.check inst sol))
  | None -> Alcotest.fail "no best solution");
  (* Costs along the schedule are recorded in order. *)
  List.iter
    (fun st ->
      Alcotest.(check bool) "objective present for solved steps" true
        (st.Kstar.objective <> None || st.Kstar.outcome.Outcome.solution = None))
    r.Kstar.steps

let test_kstar_respects_time_threshold () =
  let inst = small_instance () in
  let r = Kstar.search ~schedule:[ 1; 2; 3; 4; 5 ] ~time_threshold_s:0. kstar_config inst in
  (* The first solve exceeds a 0-second threshold, so the search stops
     after one step. *)
  Alcotest.(check int) "stopped after first step" 1 (List.length r.Kstar.steps);
  Alcotest.(check bool) "reason is time" true (r.Kstar.stopped_because = `Time_threshold)

let test_kstar_stops_on_no_improvement () =
  let inst = small_instance () in
  (* A repeated K* extends the pool by nothing, so the second step's
     objective is identical and the stall detector must fire before the
     remaining schedule runs. *)
  let r = Kstar.search ~schedule:[ 3; 3; 6 ] kstar_config inst in
  Alcotest.(check int) "stopped after the repeat" 2 (List.length r.Kstar.steps);
  Alcotest.(check bool) "reason is stall" true (r.Kstar.stopped_because = `No_improvement)

let test_kstar_schedule_exhausted () =
  let inst = small_instance () in
  let r = Kstar.search ~schedule:[ 2 ] kstar_config inst in
  Alcotest.(check int) "one step" 1 (List.length r.Kstar.steps);
  Alcotest.(check bool) "reason is exhaustion" true
    (r.Kstar.stopped_because = `Schedule_exhausted);
  Alcotest.(check bool) "best found" true (r.Kstar.best <> None)

let test_kstar_infeasible_steps_neutral () =
  (* A lifetime bound no component can meet: pools build fine but every
     MILP is infeasible.  Steps without an incumbent must count neither
     as improvement nor as stall, so the whole schedule is walked. *)
  let inst = small_instance ~lifetime:(Some 1000.) () in
  let r = Kstar.search ~schedule:[ 1; 2; 3 ] kstar_config inst in
  Alcotest.(check int) "all steps walked" 3 (List.length r.Kstar.steps);
  Alcotest.(check bool) "reason is exhaustion" true
    (r.Kstar.stopped_because = `Schedule_exhausted);
  Alcotest.(check bool) "no best" true (r.Kstar.best = None);
  List.iter
    (fun st -> Alcotest.(check bool) "no incumbent" true (st.Kstar.objective = None))
    r.Kstar.steps

let test_session_grow_monotone () =
  let inst = small_instance () in
  let session =
    Session.start Solver_config.(default |> with_approx ~loc_kstar:6 () |> with_time_limit 60.) inst
  in
  (match Session.grow session ~kstar:1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let o1 = Session.solve session in
  (match Session.grow session ~kstar:4 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let o4 = Session.solve session in
  let s1 = o1.Outcome.stats and s4 = o4.Outcome.stats in
  Alcotest.(check bool) "first step solves" true (o1.Outcome.solution <> None);
  Alcotest.(check bool) "vars grow" true (s4.Outcome.nvars >= s1.Outcome.nvars);
  Alcotest.(check bool) "constraints grow" true (s4.Outcome.nconstrs >= s1.Outcome.nconstrs);
  Alcotest.(check bool) "pool grows" true (s4.Outcome.pool_size >= s1.Outcome.pool_size);
  Alcotest.(check bool) "delta counted" true
    (s4.Outcome.delta_paths = s4.Outcome.pool_size - s1.Outcome.pool_size);
  match (o1.Outcome.solution, o4.Outcome.solution) with
  | Some s1, Some s4 ->
      (* Nested pools: the wider step cannot be worse under a carried
         incumbent. *)
      Alcotest.(check bool) "no regression" true
        (s4.Solution.dollar_cost <= s1.Solution.dollar_cost +. 1e-6)
  | _ -> Alcotest.fail "both steps should solve"

(* ------------------------------------------------------------------ *)
(* Encoding internals                                                  *)
(* ------------------------------------------------------------------ *)

let test_rss_expr_arithmetic () =
  let inst = small_instance () in
  let ctx = Encode_common.create inst in
  (* RSS expression of link (0, 3): constant part must be -PL. *)
  let e = Encode_common.rss_expr ctx 0 3 in
  Alcotest.(check (float 1e-9)) "constant is -PL" (-.inst.Instance.pl.(0).(3))
    (Milp.Lin.constant e);
  (* Coefficients: each sensor device contributes tx+gain on node 0. *)
  List.iter
    (fun ((c : Components.Component.t), v) ->
      Alcotest.(check (float 1e-9))
        ("coef of " ^ c.Components.Component.name)
        (c.Components.Component.tx_power_dbm +. c.Components.Component.antenna_gain_dbi)
        (Milp.Lin.coeff e v))
    (Encode_common.sizing_vars ctx 0)

let test_edge_var_shared_and_validated () =
  let inst = small_instance () in
  let ctx = Encode_common.create inst in
  let v1 = Encode_common.edge_var ctx 0 3 in
  let v2 = Encode_common.edge_var ctx 0 3 in
  Alcotest.(check int) "same var on re-request" v1 v2;
  Alcotest.(check bool) "non-candidate link rejected" true
    (try
       ignore (Encode_common.edge_var ctx 3 0 (* relay -> sensor is not allowed *));
       false
     with Invalid_argument _ -> true)

let test_rss_floor_from_requirements () =
  let inst = small_instance ~snr:17. () in
  let ctx = Encode_common.create inst in
  Alcotest.(check (float 1e-9)) "floor = noise + snr" (-83.) (Encode_common.rss_floor_dbm ctx)



let test_solve_node_count_objective () =
  let inst = small_instance ~objective:[ (1., Objective.Node_count) ] () in
  let _, sol = run_ok inst (Solve.approx ~kstar:6 ()) in
  (* 3 fixed nodes are forced; the objective should avoid any relay it
     possibly can. *)
  Alcotest.(check bool)
    (Printf.sprintf "few nodes (%d)" sol.Solution.node_count)
    true
    (sol.Solution.node_count <= 4);
  match Solution.check inst sol with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs)

let test_localization_approx_full_parity () =
  (* With loc_kstar >= #anchors the pruned encoding equals the full
     one, so both must reach the same optimal cost. *)
  let template =
    Template.create
      (List.init 5 (fun i -> node (Printf.sprintf "a%d" i) anchor (p (float_of_int i *. 7.) 0.)))
  in
  let evals = Array.init 4 (fun i -> p (3.5 +. (float_of_int i *. 7.)) 2.) in
  let reqs =
    {
      Requirements.empty with
      Requirements.localization =
        Some { Requirements.min_anchors = 2; loc_min_rss_dbm = -78.; eval_points = evals };
    }
  in
  let inst =
    Instance.create_exn ~template ~library:Components.Library.builtin
      ~channel:Radio.Channel.log_distance_2_4ghz ~requirements:reqs ~objective:Objective.dollar ()
  in
  let _, sol_full = run_ok inst Solve.Full_enum in
  let _, sol_pruned = run_ok inst (Solve.approx ~loc_kstar:5 ()) in
  Alcotest.(check (float 1e-6)) "same optimal cost" sol_full.Solution.dollar_cost
    sol_pruned.Solution.dollar_cost

let test_full_extraction_follows_path () =
  let inst = small_instance () in
  let _, sol = run_ok inst Solve.Full_enum in
  List.iter
    (fun rr ->
      let r = List.nth inst.Instance.requirements.Requirements.routes rr.Solution.rr_req in
      Alcotest.(check (option int)) "starts at src" (Some r.Requirements.src)
        (Netgraph.Path.source rr.Solution.rr_path);
      Alcotest.(check (option int)) "ends at dst" (Some r.Requirements.dst)
        (Netgraph.Path.destination rr.Solution.rr_path);
      Alcotest.(check bool) "simple" true (Netgraph.Path.is_simple rr.Solution.rr_path))
    sol.Solution.routes

let test_pathgen_latency_filters_pool () =
  (* A 33 ms deadline = 2 superframes -> only paths of <= 2 hops. *)
  let reqs =
    { (Requirements.add_route ~max_latency_s:0.033 Requirements.empty ~src:0 ~dst:2) with
      Requirements.min_snr_db = Some 5. }
  in
  let inst =
    Instance.create_exn ~template:(small_template ()) ~library:Components.Library.builtin
      ~channel:Radio.Channel.log_distance_2_4ghz ~requirements:reqs ~objective:Objective.dollar ()
  in
  match Path_gen.generate ~kstar:8 inst with
  | Error e -> Alcotest.fail e
  | Ok { pools; _ } ->
      List.iter
        (fun pool ->
          List.iter
            (fun path ->
              Alcotest.(check bool) "within latency hops" true (Netgraph.Path.length path <= 2))
            pool.Path_gen.pool)
        pools


let test_solve_three_replicas () =
  (* A template with three parallel relay corridors supports three
     mutually disjoint routes. *)
  let template =
    Template.create
      [
        node ~fixed:true "s0" sensor (p 0. 10.);
        node ~fixed:true "sink" sink (p 40. 10.);
        node "ra" relay (p 20. 2.);
        node "rb" relay (p 20. 10.);
        node "rc" relay (p 20. 18.);
      ]
  in
  let reqs =
    { (Requirements.add_route ~replicas:3 Requirements.empty ~src:0 ~dst:1) with
      Requirements.min_snr_db = Some 5. }
  in
  let inst =
    Instance.create_exn ~template ~library:Components.Library.builtin
      ~channel:Radio.Channel.log_distance_2_4ghz ~requirements:reqs ~objective:Objective.dollar ()
  in
  let _, sol = run_ok inst (Solve.approx ~kstar:9 ()) in
  Alcotest.(check int) "three replicas" 3 (List.length sol.Solution.routes);
  (match Solution.check inst sol with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs));
  (* Pairwise disjoint. *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool) "pairwise disjoint" true
              (Netgraph.Path.edge_disjoint a.Solution.rr_path b.Solution.rr_path))
        sol.Solution.routes)
    sol.Solution.routes

(* ------------------------------------------------------------------ *)
(* Resilience and simulation                                           *)
(* ------------------------------------------------------------------ *)

let solved_small ?replicas () =
  let inst = small_instance ?replicas () in
  let _, sol = run_ok inst (Solve.approx ~kstar:6 ()) in
  (inst, sol)

let test_resilience_replicated_routes_survive () =
  let inst, sol = solved_small ~replicas:2 () in
  let reports = Resilience.single_link_faults inst sol in
  (* With two disjoint replicas per route, any single-link failure
     leaves at least one replica intact. *)
  List.iter
    (fun (r : Resilience.report) ->
      Alcotest.(check int)
        (Format.asprintf "%a" Resilience.pp_report r)
        r.Resilience.total_routes r.Resilience.surviving_routes)
    reports;
  Alcotest.(check (float 1e-9)) "worst case survival" 1.0
    (Resilience.worst_case_survival reports)

let test_resilience_single_route_vulnerable () =
  let inst, sol = solved_small ~replicas:1 () in
  (* Killing the destination-side link of a route must lose it. *)
  match sol.Solution.routes with
  | rr :: _ -> (
      match List.rev (Netgraph.Path.edges rr.Solution.rr_path) with
      | last_edge :: _ ->
          let u, v = last_edge in
          Alcotest.(check bool) "route lost" false
            (Resilience.route_survives sol ~req:rr.Solution.rr_req
               (Resilience.Link_failure (u, v)));
          ignore inst
      | [] -> Alcotest.fail "empty route")
  | [] -> Alcotest.fail "no routes"

let test_resilience_node_fault_reports () =
  let inst, sol = solved_small ~replicas:1 () in
  let reports = Resilience.single_node_faults inst sol in
  (* Only non-fixed nodes are candidate faults. *)
  List.iter
    (fun (r : Resilience.report) ->
      match r.Resilience.fault with
      | Resilience.Node_failure n ->
          Alcotest.(check bool) "non-fixed" false
            (Template.node inst.Instance.template n).Template.fixed
      | Resilience.Link_failure _ -> Alcotest.fail "unexpected link fault")
    reports

let test_simulate_healthy_network () =
  let inst, sol = solved_small () in
  let sim = Simulate.run ~params:{ Simulate.default_params with Simulate.periods = 400 } inst sol in
  Alcotest.(check int) "all packets generated" (400 * 2) sim.Simulate.generated;
  Alcotest.(check bool)
    (Printf.sprintf "delivery ratio %.3f ~ 1" sim.Simulate.delivery_ratio)
    true
    (sim.Simulate.delivery_ratio > 0.99);
  Alcotest.(check bool) "empirical ETX near 1" true (sim.Simulate.mean_attempts_per_hop < 1.05);
  match Simulate.check_against_guarantees inst sol sim with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_simulate_deterministic () =
  let inst, sol = solved_small () in
  let p = { Simulate.default_params with Simulate.periods = 100 } in
  let a = Simulate.run ~params:p inst sol in
  let b = Simulate.run ~params:p inst sol in
  Alcotest.(check int) "same deliveries" a.Simulate.delivered b.Simulate.delivered;
  Alcotest.(check (float 1e-12)) "same etx" a.Simulate.mean_attempts_per_hop
    b.Simulate.mean_attempts_per_hop

let test_simulate_lifetime_consistent_with_analysis () =
  (* Simulated lifetime should be within a factor of the analytical
     estimate (same physics, stochastic attempts vs ETX expectation). *)
  let inst, sol = solved_small () in
  let sim = Simulate.run inst sol in
  let analytical =
    List.fold_left
      (fun acc (i, y) ->
        let role = (Template.node inst.Instance.template i).Template.role in
        if role = Components.Component.Sink then acc else Float.min acc y)
      infinity sol.Solution.lifetimes_years
  in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.1f vs analytical %.1f" sim.Simulate.min_lifetime_years
       analytical)
    true
    (sim.Simulate.min_lifetime_years > analytical *. 0.7
    && sim.Simulate.min_lifetime_years < analytical *. 1.4)


(* ------------------------------------------------------------------ *)
(* End-to-end regressions: pin known-good outcomes of the scenarios    *)
(* (values verified against the physical models by Solution.check).    *)
(* ------------------------------------------------------------------ *)

let test_regression_quickstart_cost () =
  (* The quickstart example's network: two sensors reach the sink
     directly with the 4.5 dBm sensor option; $4 + $4 + $80 sink. *)
  let wall =
    { Geometry.Floorplan.seg = Geometry.Segment.of_coords 15. 0. 15. 9.;
      material = Geometry.Floorplan.Brick }
  in
  let plan = Geometry.Floorplan.create ~width:30. ~height:12. [ wall ] in
  let template =
    Template.create
      [
        node ~fixed:true "s0" sensor (p 2. 2.);
        node ~fixed:true "s1" sensor (p 2. 10.);
        node ~fixed:true "sink" sink (p 28. 6.);
        node "r0" relay (p 10. 6.);
        node "r1" relay (p 16. 3.);
        node "r2" relay (p 22. 6.);
      ]
  in
  let reqs =
    let r = Requirements.add_route Requirements.empty ~src:0 ~dst:2 in
    let r = Requirements.add_route r ~src:1 ~dst:2 in
    { r with Requirements.min_snr_db = Some 15.; min_lifetime_years = Some 4. }
  in
  let inst =
    Instance.create_exn ~template ~library:Components.Library.builtin
      ~channel:(Radio.Channel.multi_wall_2_4ghz plan) ~requirements:reqs
      ~objective:Objective.dollar ()
  in
  let _, sol = run_ok inst (Solve.approx ~kstar:4 ()) in
  Alcotest.(check (float 1e-6)) "pinned cost" 88. sol.Solution.dollar_cost;
  Alcotest.(check int) "no relays needed" 3 sol.Solution.node_count

let test_regression_default_scenarios_feasible () =
  (* The shipped default scenarios must encode and pass Algorithm 1. *)
  (match Scenarios.data_collection Scenarios.default_data_collection with
  | Error e -> Alcotest.fail e
  | Ok inst -> (
      match Solve.encode_size inst (Solve.approx ~kstar:6 ()) with
      | Ok (v, c) ->
          Alcotest.(check bool) "data-collection encodes" true (v > 0 && c > 0)
      | Error e -> Alcotest.fail e));
  match Scenarios.localization Scenarios.default_localization with
  | Error e -> Alcotest.fail e
  | Ok inst -> (
      match Solve.encode_size inst (Solve.approx ~loc_kstar:8 ()) with
      | Ok (v, c) -> Alcotest.(check bool) "localization encodes" true (v > 0 && c > 0)
      | Error e -> Alcotest.fail e)

let test_regression_warm_start_unchanged () =
  (* Warm-started node LPs must not change what branch & bound finds on
     a seed scenario: same status, same objective, and the warm run must
     actually serve LPs from the warm path. *)
  match Scenarios.scaled_data_collection ~total_nodes:16 ~end_devices:5 () with
  | Error e -> Alcotest.fail e
  | Ok inst -> (
      let solve warm_start =
        let cfg =
          Solver_config.(
            default
            |> with_approx ~kstar:4 ()
            |> with_time_limit 60. |> with_rel_gap 1e-6 |> with_warm_start warm_start)
        in
        match Solve.run cfg inst with
        | Ok out -> out
        | Error e -> Alcotest.fail e
      in
      let warm = solve true and cold = solve false in
      Alcotest.(check string) "status unchanged"
        (Milp.Status.mip_status_to_string cold.Outcome.status)
        (Milp.Status.mip_status_to_string warm.Outcome.status);
      match (warm.Outcome.solution, cold.Outcome.solution) with
      | Some w, Some c ->
          Alcotest.(check (float 1e-5)) "objective unchanged" c.Solution.dollar_cost
            w.Solution.dollar_cost;
          Alcotest.(check bool) "warm path exercised" true
            (warm.Outcome.mip.Milp.Branch_bound.lp_warm > 0)
      | None, None -> ()
      | _ -> Alcotest.fail "one mode found a solution, the other did not")

let test_regression_cuts_unchanged () =
  (* Cutting planes and reduced-cost fixing must not change what branch
     & bound finds on a seed scenario (the Table-1 objectives pinned in
     BENCH_PR1.json ride on the same invariant at full scale): same
     status, same objective, and the default run must actually separate
     cuts. *)
  match Scenarios.scaled_data_collection ~total_nodes:16 ~end_devices:5 () with
  | Error e -> Alcotest.fail e
  | Ok inst -> (
      let solve enabled =
        let cfg =
          Solver_config.(
            default
            |> with_approx ~kstar:4 ()
            |> with_time_limit 60. |> with_rel_gap 1e-6 |> with_cuts enabled
            |> with_rc_fixing enabled)
        in
        match Solve.run cfg inst with
        | Ok out -> out
        | Error e -> Alcotest.fail e
      in
      let on = solve true and off = solve false in
      Alcotest.(check string) "status unchanged"
        (Milp.Status.mip_status_to_string off.Outcome.status)
        (Milp.Status.mip_status_to_string on.Outcome.status);
      Alcotest.(check int) "ablated run separates nothing" 0
        off.Outcome.mip.Milp.Branch_bound.cuts_separated;
      Alcotest.(check bool) "cut machinery exercised" true
        (on.Outcome.mip.Milp.Branch_bound.cuts_applied > 0);
      Alcotest.(check bool) "cuts do not grow the tree" true
        (on.Outcome.mip.Milp.Branch_bound.nodes <= off.Outcome.mip.Milp.Branch_bound.nodes);
      match (on.Outcome.solution, off.Outcome.solution) with
      | Some w, Some c ->
          Alcotest.(check (float 1e-5)) "objective unchanged" c.Solution.dollar_cost
            w.Solution.dollar_cost
      | None, None -> ()
      | _ -> Alcotest.fail "one mode found a solution, the other did not")

let test_regression_cut_families_parity () =
  (* Per-family ablation: restricting separation to any single family
     must leave the proven optimum unchanged — each separator is only
     allowed to tighten the relaxation, never to cut off the answer. *)
  match Scenarios.scaled_data_collection ~total_nodes:16 ~end_devices:5 () with
  | Error e -> Alcotest.fail e
  | Ok inst ->
      let solve fams =
        let cfg =
          Solver_config.(
            default
            |> with_approx ~kstar:4 ()
            |> with_time_limit 60. |> with_rel_gap 1e-6
            |> with_cut_families fams)
        in
        match Solve.run cfg inst with
        | Ok out -> out
        | Error e -> Alcotest.fail e
      in
      let base_obj =
        match (solve Milp.Cuts.all_families).Outcome.solution with
        | Some s -> s.Solution.dollar_cost
        | None -> Alcotest.fail "no baseline solution"
      in
      List.iter
        (fun fam ->
          match (solve [ fam ]).Outcome.solution with
          | Some s ->
              Alcotest.(check (float 1e-5))
                (Milp.Cuts.family_name fam ^ " alone: objective unchanged")
                base_obj s.Solution.dollar_cost
          | None -> Alcotest.fail (Milp.Cuts.family_name fam ^ ": no solution"))
        Milp.Cuts.all_families

let test_power_cuts_valid_at_optimum () =
  (* The structural separator reads instance data (path loss, device
     powers); its cuts must be satisfied by the true MILP optimum no
     matter how aggressive the fractional point they were separated at.
     The all-ones point turns every weak-device inequality maximally
     violated, so it exercises every cut shape the instance supports. *)
  match Scenarios.scaled_data_collection ~total_nodes:16 ~end_devices:5 () with
  | Error e -> Alcotest.fail e
  | Ok inst -> (
      match Approx_encoding.encode ~kstar:4 ~loc_kstar:8 inst with
      | Error e -> Alcotest.fail e
      | Ok enc -> (
          let ctx = enc.Approx_encoding.ctx in
          let model = Encode_common.model ctx in
          let n = Milp.Model.nvars model in
          let ones = Array.make n 1. in
          let cuts = Struct_cuts.power_cuts ctx ones in
          Alcotest.(check bool) "separator fires on the all-ones point" true
            (cuts <> []);
          let options =
            {
              Milp.Branch_bound.default_options with
              Milp.Branch_bound.time_limit = 60.;
              rel_gap = 1e-6;
            }
          in
          let mip =
            Milp.Branch_bound.solve ~options
              ~separators:(Struct_cuts.separators ctx) model
          in
          match mip.Milp.Branch_bound.solution with
          | None -> Alcotest.fail "no MILP optimum to validate against"
          | Some x ->
              List.iter
                (fun c ->
                  Alcotest.(check bool) "cut keeps the optimum" true
                    (Milp.Cuts.satisfied c x))
                cuts))

let test_regression_approx_much_smaller_on_defaults () =
  (* The headline size reduction on the shipped Table-1 scenario. *)
  match Scenarios.data_collection Scenarios.default_data_collection with
  | Error e -> Alcotest.fail e
  | Ok inst -> (
      match
        (Solve.encode_size inst Solve.Full_enum, Solve.encode_size inst (Solve.approx ~kstar:6 ()))
      with
      | Ok (fv, fc), Ok (av, ac) ->
          Alcotest.(check bool)
            (Printf.sprintf "vars %dx smaller" (fv / Int.max 1 av))
            true (fv >= 10 * av);
          Alcotest.(check bool)
            (Printf.sprintf "cons %dx smaller" (fc / Int.max 1 ac))
            true (fc >= 10 * ac)
      | Error e, _ | _, Error e -> Alcotest.fail e)

let test_regression_kstar_cutoff_monotone () =
  (* The Table-4 mechanism: under nested pools and inherited cutoffs the
     reported cost sequence is non-increasing. *)
  match Scenarios.scaled_data_collection ~total_nodes:20 ~end_devices:6 () with
  | Error e -> Alcotest.fail e
  | Ok inst ->
      let best = ref nan in
      List.iter
        (fun kstar ->
          let strategy = Solve.Approx { kstar; loc_kstar = kstar } in
          let cfg =
            Solver_config.(
              default |> with_strategy strategy |> with_time_limit 20.
              |> with_rel_gap 1e-4 |> with_cutoff !best)
          in
          match Solve.run cfg inst with
          | Ok { Outcome.solution = Some sol; _ } ->
              if not (Float.is_nan !best) then
                Alcotest.(check bool) "improved under cutoff" true
                  (sol.Solution.dollar_cost < !best);
              best := sol.Solution.dollar_cost
          | Ok _ -> () (* no improvement: cost carries over *)
          | Error e -> Alcotest.fail e)
        [ 1; 3; 5 ];
      Alcotest.(check bool) "some solution found" true (not (Float.is_nan !best))

let test_regression_incremental_matches_rebuild () =
  (* The PR-3 invariant behind the --no-incremental ablation: carrying
     the model, path pool, cut pool and incumbent across the K* sweep
     must land on the same final objective as re-encoding every step
     from scratch. *)
  match Scenarios.scaled_data_collection ~total_nodes:16 ~end_devices:5 () with
  | Error e -> Alcotest.fail e
  | Ok inst -> (
      let sweep incremental =
        let cfg =
          Solver_config.(
            default |> with_time_limit 60. |> with_rel_gap 1e-6
            |> with_incremental incremental)
        in
        Kstar.search ~schedule:[ 1; 3 ] ~time_threshold_s:60. cfg inst
      in
      let inc = sweep true and reb = sweep false in
      Alcotest.(check int) "same step count"
        (List.length reb.Kstar.steps)
        (List.length inc.Kstar.steps);
      match (inc.Kstar.best, reb.Kstar.best) with
      | Some (ik, isol), Some (rk, rsol) ->
          Alcotest.(check int) "same best kstar" rk ik;
          Alcotest.(check (float 1e-6)) "same final objective" rsol.Solution.dollar_cost
            isol.Solution.dollar_cost
      | None, None -> ()
      | _ -> Alcotest.fail "one mode found a solution, the other did not")

(* ------------------------------------------------------------------ *)
(* Parallel tree search                                                *)
(* ------------------------------------------------------------------ *)

(* Table-1 template family, sized down so a 1e-6 gap is provable inside
   the test budget on every objective — the energy objective's tree
   blows past the time limit at anything larger, which would turn the
   parity check into a comparison of timeout incumbents. *)
let par_test_params =
  {
    Scenarios.default_data_collection with
    Scenarios.dc_sensors = 3;
    dc_relay_grid = (3, 2);
    dc_width = 45.;
    dc_height = 28.;
  }

let par_solve ?(kstar = 4) ?(dense = false) ?(presolve = true) ~workers inst =
  let k = kstar in
  let cfg =
    Solver_config.(
      default |> with_approx ~kstar:k () |> with_time_limit 60. |> with_rel_gap 1e-6
      |> with_workers workers |> with_dense_basis dense |> with_presolve presolve)
  in
  match Solve.run cfg inst with Ok out -> out | Error e -> Alcotest.fail e

let test_parallel_matches_sequential () =
  (* The tentpole parity claim: every worker count lands on the same
     objective (to 1e-6) as the sequential loop, on all three Table-1
     objectives. *)
  List.iter
    (fun (name, objective) ->
      match Scenarios.data_collection ~objective par_test_params with
      | Error e -> Alcotest.fail e
      | Ok inst ->
          let seq = par_solve ~workers:1 inst in
          Alcotest.(check string)
            (name ^ " sequential run proves optimality")
            "optimal"
            (Milp.Status.mip_status_to_string seq.Outcome.status);
          List.iter
            (fun w ->
              let par = par_solve ~workers:w inst in
              Alcotest.(check string)
                (Printf.sprintf "%s status parity at %d workers" name w)
                (Milp.Status.mip_status_to_string seq.Outcome.status)
                (Milp.Status.mip_status_to_string par.Outcome.status);
              match (seq.Outcome.solution, par.Outcome.solution) with
              | Some _, Some _ ->
                  Alcotest.(check (float 1e-6))
                    (Printf.sprintf "%s objective parity at %d workers" name w)
                    seq.Outcome.mip.Milp.Branch_bound.objective
                    par.Outcome.mip.Milp.Branch_bound.objective
              | None, None -> ()
              | _ -> Alcotest.fail (name ^ ": incumbent presence diverged"))
            [ 2; 4 ])
    [
      ("dollar", Objective.dollar);
      ("energy", Objective.energy);
      ("combined", Objective.combine Objective.dollar Objective.energy);
    ]

let test_dense_sparse_kernel_parity () =
  (* The sparse LU kernel and the --dense-basis ablation must land on
     identical statuses and objectives (to 1e-6) on all three Table-1
     objectives, sequentially and under the parallel tree search. *)
  List.iter
    (fun (name, objective) ->
      match Scenarios.data_collection ~objective par_test_params with
      | Error e -> Alcotest.fail e
      | Ok inst ->
          List.iter
            (fun w ->
              let sparse = par_solve ~workers:w inst in
              let dense = par_solve ~dense:true ~workers:w inst in
              Alcotest.(check string)
                (Printf.sprintf "%s status parity at %d workers" name w)
                (Milp.Status.mip_status_to_string sparse.Outcome.status)
                (Milp.Status.mip_status_to_string dense.Outcome.status);
              match (sparse.Outcome.solution, dense.Outcome.solution) with
              | Some _, Some _ ->
                  Alcotest.(check (float 1e-6))
                    (Printf.sprintf "%s objective parity at %d workers" name w)
                    sparse.Outcome.mip.Milp.Branch_bound.objective
                    dense.Outcome.mip.Milp.Branch_bound.objective
              | None, None -> ()
              | _ -> Alcotest.fail (name ^ ": incumbent presence diverged"))
            [ 1; 4 ])
    [
      ("dollar", Objective.dollar);
      ("energy", Objective.energy);
      ("combined", Objective.combine Objective.dollar Objective.energy);
    ]

let test_presolve_matches_ablation () =
  (* Reduction-stack parity: solving in the reduced space must land on
     the same status and objective (to 1e-6) as the --no-presolve
     ablation on all three Table-1 objectives, sequentially and under
     the parallel tree search, on both basis kernels. *)
  List.iter
    (fun (name, objective) ->
      match Scenarios.data_collection ~objective par_test_params with
      | Error e -> Alcotest.fail e
      | Ok inst ->
          List.iter
            (fun (w, dense) ->
              let tag = Printf.sprintf "%s at %d workers (%s)" name w
                  (if dense then "dense" else "sparse")
              in
              let on = par_solve ~workers:w ~dense inst in
              let off = par_solve ~workers:w ~dense ~presolve:false inst in
              Alcotest.(check string) (tag ^ ": status parity")
                (Milp.Status.mip_status_to_string off.Outcome.status)
                (Milp.Status.mip_status_to_string on.Outcome.status);
              match (on.Outcome.solution, off.Outcome.solution) with
              | Some _, Some _ ->
                  Alcotest.(check (float 1e-6))
                    (tag ^ ": objective parity")
                    off.Outcome.mip.Milp.Branch_bound.objective
                    on.Outcome.mip.Milp.Branch_bound.objective
              | None, None -> ()
              | _ -> Alcotest.fail (tag ^ ": incumbent presence diverged"))
            [ (1, false); (1, true); (4, false); (4, true) ])
    [
      ("dollar", Objective.dollar);
      ("energy", Objective.energy);
      ("combined", Objective.combine Objective.dollar Objective.energy);
    ]

let test_presolve_node_count_regression () =
  (* Energy scenario, sequential solver: the tree is bit-deterministic,
     so the node counts with and without the reduction stack are pinned
     exactly.  A drift here means the root reduction (or the baseline
     tree) changed behaviour — update the constants only with the PR
     that intends the change.  The reduced tree happens to be larger on
     this instance (strengthened rows reshape the LP bounds and the
     branching order) while winning back far more per node; wall-time
     and sweep-level wins are measured in bench/BENCH_PR7.json. *)
  match Scenarios.data_collection ~objective:Objective.energy par_test_params with
  | Error e -> Alcotest.fail e
  | Ok inst ->
      let run presolve = (par_solve ~workers:1 ~presolve inst).Outcome.mip in
      let on = run true and off = run false in
      Alcotest.(check int) "node count with presolve" 575 on.Milp.Branch_bound.nodes;
      Alcotest.(check int) "node count without presolve" 606 off.Milp.Branch_bound.nodes;
      Alcotest.(check bool) "reduction removes rows" true
        (on.Milp.Branch_bound.presolve_rows_removed > 0);
      Alcotest.(check bool) "reduction removes columns" true
        (on.Milp.Branch_bound.presolve_cols_removed > 0);
      Alcotest.(check bool) "ablation removes nothing" true
        (off.Milp.Branch_bound.presolve_rows_removed = 0
        && off.Milp.Branch_bound.presolve_cols_removed = 0);
      Alcotest.(check (float 1e-6)) "objective parity" off.Milp.Branch_bound.objective
        on.Milp.Branch_bound.objective

let test_sequential_bit_deterministic () =
  (* nworkers = 1 must take the pre-parallelism loop verbatim: two runs
     agree on every tally, not just the objective. *)
  match Scenarios.scaled_data_collection ~total_nodes:16 ~end_devices:5 () with
  | Error e -> Alcotest.fail e
  | Ok inst ->
      let a = (par_solve ~workers:1 inst).Outcome.mip
      and b = (par_solve ~workers:1 inst).Outcome.mip in
      Alcotest.(check int) "nodes" a.Milp.Branch_bound.nodes b.Milp.Branch_bound.nodes;
      Alcotest.(check int) "lp iterations" a.Milp.Branch_bound.lp_iterations
        b.Milp.Branch_bound.lp_iterations;
      Alcotest.(check int) "warm solves" a.Milp.Branch_bound.lp_warm b.Milp.Branch_bound.lp_warm;
      Alcotest.(check int) "cold solves" a.Milp.Branch_bound.lp_cold b.Milp.Branch_bound.lp_cold;
      Alcotest.(check int) "fallback solves" a.Milp.Branch_bound.lp_fallback
        b.Milp.Branch_bound.lp_fallback;
      Alcotest.(check int) "bound pruned" a.Milp.Branch_bound.bound_pruned
        b.Milp.Branch_bound.bound_pruned;
      Alcotest.(check bool) "objective bit-identical" true
        (a.Milp.Branch_bound.objective = b.Milp.Branch_bound.objective)

let test_parallel_seed_still_matches () =
  (* The seed perturbs the worker heuristic schedule, never the answer. *)
  match Scenarios.scaled_data_collection ~total_nodes:16 ~end_devices:5 () with
  | Error e -> Alcotest.fail e
  | Ok inst ->
      let solve seed =
        let cfg =
          Solver_config.(
            default |> with_approx ~kstar:4 () |> with_time_limit 60. |> with_rel_gap 1e-6
            |> with_workers 4 |> with_seed seed)
        in
        match Solve.run cfg inst with Ok out -> out | Error e -> Alcotest.fail e
      in
      let a = solve 0 and b = solve 42 in
      match (a.Outcome.solution, b.Outcome.solution) with
      | Some _, Some _ ->
          Alcotest.(check (float 1e-6)) "objective independent of seed"
            a.Outcome.mip.Milp.Branch_bound.objective b.Outcome.mip.Milp.Branch_bound.objective
      | _ -> Alcotest.fail "both seeds should solve"

let () =
  Alcotest.run "archex"
    [
      ( "template",
        [
          Alcotest.test_case "basics" `Quick test_template_basics;
          Alcotest.test_case "duplicates rejected" `Quick test_template_rejects_duplicates;
          Alcotest.test_case "role-based links" `Quick test_template_link_roles;
          Alcotest.test_case "path loss pruning" `Quick test_template_max_path_loss_prunes;
        ] );
      ( "requirements",
        [
          Alcotest.test_case "validation" `Quick test_requirements_validate;
          Alcotest.test_case "total paths" `Quick test_requirements_total_paths;
        ] );
      ( "instance",
        [
          Alcotest.test_case "library coverage" `Quick test_instance_validates_library;
          Alcotest.test_case "snr floor combination" `Quick test_instance_min_snr_combination;
          Alcotest.test_case "etx bound" `Quick test_instance_etx_bound;
          Alcotest.test_case "devices_for" `Quick test_instance_devices_for;
          Alcotest.test_case "latency hop bound" `Quick test_instance_latency_hop_bound;
        ] );
      ( "path_gen",
        [
          Alcotest.test_case "pools produced" `Quick test_pathgen_produces_pools;
          Alcotest.test_case "disjoint capacity" `Quick test_pathgen_disjoint_capacity;
          Alcotest.test_case "distinct candidates" `Quick test_pathgen_pool_distinct;
          Alcotest.test_case "hop bound filter" `Quick test_pathgen_hop_bound_filter;
          Alcotest.test_case "LQ filter" `Quick test_pathgen_lq_filter_drops;
          Alcotest.test_case "best-case RSS" `Quick test_pathgen_best_case_rss;
          Alcotest.test_case "localization pruning" `Quick test_pathgen_localization_candidates;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "approx smaller than full" `Quick test_encoding_sizes;
          Alcotest.test_case "K* grows encoding" `Quick test_encoding_kstar_grows;
        ] );
      ( "solve",
        [
          Alcotest.test_case "approx end-to-end" `Quick test_solve_approx_small;
          Alcotest.test_case "full vs approx" `Slow test_solve_full_matches_or_beats_approx;
          Alcotest.test_case "disjoint replicas" `Quick test_solve_disjoint_replicas;
          Alcotest.test_case "three replicas" `Quick test_solve_three_replicas;
          Alcotest.test_case "lifetime constraint" `Quick test_solve_lifetime_constraint_bites;
          Alcotest.test_case "energy objective" `Quick test_solve_energy_objective;
          Alcotest.test_case "localization end-to-end" `Quick test_solve_localization_end_to_end;
          Alcotest.test_case "infeasible reported" `Quick test_solve_infeasible_reported;
          Alcotest.test_case "node-count objective" `Quick test_solve_node_count_objective;
          Alcotest.test_case "localization approx = full" `Quick
            test_localization_approx_full_parity;
          Alcotest.test_case "full extraction" `Quick test_full_extraction_follows_path;
          Alcotest.test_case "latency filters pool" `Quick test_pathgen_latency_filters_pool;
          qt prop_full_no_worse_than_approx;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "data collection builds" `Quick test_scenarios_data_collection_builds;
          Alcotest.test_case "deterministic" `Quick test_scenarios_deterministic;
          Alcotest.test_case "localization builds" `Quick test_scenarios_localization_builds;
          Alcotest.test_case "scaled sizes" `Quick test_scenarios_scaled_sizes;
          Alcotest.test_case "scaled validation" `Quick test_scenarios_scaled_rejects_bad;
        ] );
      ( "kstar",
        [
          Alcotest.test_case "search finds and validates" `Quick test_kstar_search_improves;
          Alcotest.test_case "time threshold" `Quick test_kstar_respects_time_threshold;
          Alcotest.test_case "no-improvement stall" `Quick test_kstar_stops_on_no_improvement;
          Alcotest.test_case "schedule exhausted" `Quick test_kstar_schedule_exhausted;
          Alcotest.test_case "infeasible steps neutral" `Quick test_kstar_infeasible_steps_neutral;
          Alcotest.test_case "session grows monotonically" `Quick test_session_grow_monotone;
        ] );
      ( "encode_common",
        [
          Alcotest.test_case "rss expression" `Quick test_rss_expr_arithmetic;
          Alcotest.test_case "edge vars shared" `Quick test_edge_var_shared_and_validated;
          Alcotest.test_case "rss floor" `Quick test_rss_floor_from_requirements;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "replicas survive link faults" `Quick
            test_resilience_replicated_routes_survive;
          Alcotest.test_case "single routes vulnerable" `Quick
            test_resilience_single_route_vulnerable;
          Alcotest.test_case "node fault reports" `Quick test_resilience_node_fault_reports;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "healthy network" `Quick test_simulate_healthy_network;
          Alcotest.test_case "deterministic" `Quick test_simulate_deterministic;
          Alcotest.test_case "lifetime vs analysis" `Quick
            test_simulate_lifetime_consistent_with_analysis;
        ] );
      ( "regression",
        [
          Alcotest.test_case "quickstart cost" `Quick test_regression_quickstart_cost;
          Alcotest.test_case "default scenarios encode" `Quick
            test_regression_default_scenarios_feasible;
          Alcotest.test_case "headline size reduction" `Quick
            test_regression_approx_much_smaller_on_defaults;
          Alcotest.test_case "warm starts preserve results" `Quick
            test_regression_warm_start_unchanged;
          Alcotest.test_case "cuts preserve results" `Quick test_regression_cuts_unchanged;
          Alcotest.test_case "per-family cut ablation parity" `Quick
            test_regression_cut_families_parity;
          Alcotest.test_case "power cuts keep the optimum" `Quick
            test_power_cuts_valid_at_optimum;
          Alcotest.test_case "kstar cutoff monotone" `Quick test_regression_kstar_cutoff_monotone;
          Alcotest.test_case "incremental matches rebuild" `Quick
            test_regression_incremental_matches_rebuild;
          Alcotest.test_case "presolve node counts on energy" `Quick
            test_presolve_node_count_regression;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "parity across workers" `Slow test_parallel_matches_sequential;
          Alcotest.test_case "dense vs sparse kernel parity" `Slow
            test_dense_sparse_kernel_parity;
          Alcotest.test_case "presolve on/off parity" `Slow test_presolve_matches_ablation;
          Alcotest.test_case "workers=1 bit-deterministic" `Quick
            test_sequential_bit_deterministic;
          Alcotest.test_case "seed does not change answer" `Quick
            test_parallel_seed_still_matches;
        ] );
      ( "solution",
        [
          Alcotest.test_case "check catches bad device" `Quick test_solution_check_catches_bad_device;
          Alcotest.test_case "check catches missing fixed" `Quick
            test_solution_check_catches_missing_fixed;
        ] );
    ]
