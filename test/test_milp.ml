(* Tests for the MILP substrate: linear expressions, the model builder,
   the bounded-variable simplex, presolve, branch & bound, and the LP
   writer.  Property-based tests check the solver against brute force
   on randomly generated instances. *)

open Milp

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let check_feq name expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" name expected got)
    true (feq expected got)

(* ------------------------------------------------------------------ *)
(* Lin                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lin_basic () =
  let e = Lin.of_list [ (2., 0); (3., 1); (-2., 0) ] in
  check_feq "coeff merge" 0. (Lin.coeff e 0);
  check_feq "coeff kept" 3. (Lin.coeff e 1);
  Alcotest.(check int) "zero coeffs dropped" 1 (Lin.nterms e)

let test_lin_add_scale () =
  let a = Lin.of_list [ (1., 0); (2., 1) ] in
  let b = Lin.of_list [ (3., 1); (4., 2) ] in
  let s = Lin.add a b in
  check_feq "sum x0" 1. (Lin.coeff s 0);
  check_feq "sum x1" 5. (Lin.coeff s 1);
  check_feq "sum x2" 4. (Lin.coeff s 2);
  let sc = Lin.scale (-2.) s in
  check_feq "scale x1" (-10.) (Lin.coeff sc 1);
  Alcotest.(check bool) "scale 0 is zero" true (Lin.is_constant (Lin.scale 0. s))

let test_lin_eval () =
  let e = Lin.add_const (Lin.of_list [ (2., 0); (-1., 3) ]) 5. in
  let v = function 0 -> 1.5 | 3 -> 2. | _ -> 0. in
  check_feq "eval" 6. (Lin.eval v e)

let test_lin_sub_neg () =
  let a = Lin.of_list [ (1., 0) ] and b = Lin.of_list [ (1., 0); (1., 1) ] in
  let d = Lin.sub a b in
  check_feq "sub x0" 0. (Lin.coeff d 0);
  check_feq "sub x1" (-1.) (Lin.coeff d 1);
  Alcotest.(check bool) "neg . neg = id" true (Lin.equal a (Lin.neg (Lin.neg a)))

let test_lin_infix () =
  let open Lin.Infix in
  let e = Lin.var 0 ++ (2. *: Lin.var 1) -- Lin.var 0 in
  Alcotest.(check int) "infix terms" 1 (Lin.nterms e);
  check_feq "infix coeff" 2. (Lin.coeff e 1)

let test_lin_iter_order () =
  let e = Lin.of_list [ (1., 5); (1., 1); (1., 3) ] in
  let order = List.map fst (Lin.terms e) in
  Alcotest.(check (list int)) "ascending var order" [ 1; 3; 5 ] order

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let test_model_vars () =
  let m = Model.create () in
  let x = Model.add_var m ~lb:(-1.) ~ub:2. "x" in
  let b = Model.add_binary m "b" in
  let k = Model.add_var m ~kind:Model.Integer ~lb:0. ~ub:9. "k" in
  Alcotest.(check int) "ids sequential" 1 b;
  Alcotest.(check int) "nvars" 3 (Model.nvars m);
  check_feq "lb" (-1.) (Model.var_lb m x);
  check_feq "binary ub" 1. (Model.var_ub m b);
  Alcotest.(check bool) "integer flag" true (Model.is_integer m k);
  Alcotest.(check bool) "continuous flag" false (Model.is_integer m x)

let test_model_bad_bounds () =
  let m = Model.create () in
  Alcotest.check_raises "lb > ub rejected"
    (Invalid_argument "Model.add_var \"x\": lb (2) > ub (1)") (fun () ->
      ignore (Model.add_var m ~lb:2. ~ub:1. "x"))

let test_model_constr_folds_constant () =
  let m = Model.create () in
  let x = Model.add_var m "x" in
  Model.add_constr m (Lin.add_const (Lin.var x) 5.) Model.Le 8.;
  let c = (Model.constrs m).(0) in
  check_feq "constant moved to rhs" 3. c.Model.c_rhs;
  check_feq "lhs constant cleared" 0. (Lin.constant c.Model.c_expr)

let test_model_check_feasible () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:5. "x" in
  let b = Model.add_binary m "b" in
  Model.add_constr m (Lin.of_list [ (1., x); (2., b) ]) Model.Le 4.;
  let ok = Model.check_feasible m (function v -> if v = x then 2. else 1.) in
  Alcotest.(check bool) "feasible point accepted" true (Result.is_ok ok);
  let bad = Model.check_feasible m (function v -> if v = x then 3. else 1.) in
  Alcotest.(check bool) "violated row rejected" true (Result.is_error bad);
  let frac = Model.check_feasible m (function v -> if v = b then 0.5 else 0.) in
  Alcotest.(check bool) "fractional binary rejected" true (Result.is_error frac)

(* ------------------------------------------------------------------ *)
(* Simplex on hand-checked LPs                                         *)
(* ------------------------------------------------------------------ *)

let lp_status = Alcotest.testable (Fmt.of_to_string Status.lp_status_to_string) ( = )

let test_simplex_textbook () =
  (* max 3x + 5y; x <= 4; 2y <= 12; 3x + 2y <= 18 -> 36 at (2, 6). *)
  let m = Model.create () in
  let x = Model.add_var m "x" and y = Model.add_var m "y" in
  Model.add_constr m (Lin.var x) Model.Le 4.;
  Model.add_constr m (Lin.term 2. y) Model.Le 12.;
  Model.add_constr m (Lin.of_list [ (3., x); (2., y) ]) Model.Le 18.;
  Model.set_objective m Model.Maximize (Lin.of_list [ (3., x); (5., y) ]);
  let r = Simplex.solve_model m in
  Alcotest.check lp_status "status" Status.Lp_optimal r.Simplex.status;
  check_feq "objective" 36. r.Simplex.objective;
  check_feq "x" 2. r.Simplex.primal.(x);
  check_feq "y" 6. r.Simplex.primal.(y)

let test_simplex_equality_and_ge () =
  (* min a + 2b; a + b = 10; a - b >= 2 -> 10 at (10, 0). *)
  let m = Model.create () in
  let a = Model.add_var m "a" and b = Model.add_var m "b" in
  Model.add_constr m (Lin.of_list [ (1., a); (1., b) ]) Model.Eq 10.;
  Model.add_constr m (Lin.of_list [ (1., a); (-1., b) ]) Model.Ge 2.;
  Model.set_objective m Model.Minimize (Lin.of_list [ (1., a); (2., b) ]);
  let r = Simplex.solve_model m in
  Alcotest.check lp_status "status" Status.Lp_optimal r.Simplex.status;
  check_feq "objective" 10. r.Simplex.objective

let test_simplex_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:4. "x" in
  Model.add_constr m (Lin.var x) Model.Ge 5.;
  let r = Simplex.solve_model m in
  Alcotest.check lp_status "status" Status.Lp_infeasible r.Simplex.status

let test_simplex_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m "x" in
  Model.set_objective m Model.Maximize (Lin.var x);
  let r = Simplex.solve_model m in
  Alcotest.check lp_status "status" Status.Lp_unbounded r.Simplex.status

let test_simplex_negative_lb () =
  let m = Model.create () in
  let x = Model.add_var m ~lb:(-3.) ~ub:10. "x" in
  Model.set_objective m Model.Minimize (Lin.var x);
  let r = Simplex.solve_model m in
  check_feq "negative lower bound attained" (-3.) r.Simplex.objective

let test_simplex_free_variable () =
  let m = Model.create () in
  let x = Model.add_var m ~lb:neg_infinity ~ub:infinity "x" in
  let y = Model.add_var m ~ub:1. "y" in
  Model.add_constr m (Lin.of_list [ (1., x); (1., y) ]) Model.Ge 2.;
  Model.set_objective m Model.Minimize (Lin.of_list [ (1., x); (1., y) ]);
  let r = Simplex.solve_model m in
  Alcotest.check lp_status "status" Status.Lp_optimal r.Simplex.status;
  check_feq "objective" 2. r.Simplex.objective

let test_simplex_free_unbounded_below () =
  let m = Model.create () in
  let x = Model.add_var m ~lb:neg_infinity ~ub:infinity "x" in
  Model.add_constr m (Lin.var x) Model.Le 5.;
  Model.set_objective m Model.Minimize (Lin.var x);
  let r = Simplex.solve_model m in
  Alcotest.check lp_status "status" Status.Lp_unbounded r.Simplex.status

let test_simplex_degenerate () =
  let m = Model.create () in
  let x = Model.add_var m "x" and y = Model.add_var m "y" in
  Model.add_constr m (Lin.of_list [ (1., x); (1., y) ]) Model.Le 1.;
  Model.add_constr m (Lin.of_list [ (1., x); (2., y) ]) Model.Le 1.;
  Model.add_constr m (Lin.of_list [ (2., x); (1., y) ]) Model.Le 1.;
  Model.set_objective m Model.Maximize (Lin.of_list [ (1., x); (1., y) ]);
  let r = Simplex.solve_model m in
  Alcotest.check lp_status "status" Status.Lp_optimal r.Simplex.status;
  check_feq "objective" (2. /. 3.) r.Simplex.objective

let test_simplex_fixed_vars () =
  let m = Model.create () in
  let x = Model.add_var m ~lb:2. ~ub:2. "x" in
  let y = Model.add_var m ~ub:10. "y" in
  Model.add_constr m (Lin.of_list [ (1., x); (1., y) ]) Model.Le 5.;
  Model.set_objective m Model.Maximize (Lin.var y);
  let r = Simplex.solve_model m in
  check_feq "fixed var respected" 3. r.Simplex.objective;
  check_feq "fixed value" 2. r.Simplex.primal.(x)

let test_simplex_equality_negative_rhs () =
  let m = Model.create () in
  let x = Model.add_var m ~lb:(-10.) ~ub:10. "x" in
  let y = Model.add_var m ~lb:(-10.) ~ub:10. "y" in
  Model.add_constr m (Lin.of_list [ (1., x); (1., y) ]) Model.Eq (-4.);
  Model.add_constr m (Lin.of_list [ (1., x); (-1., y) ]) Model.Eq 2.;
  Model.set_objective m Model.Minimize (Lin.of_list [ (1., x) ]);
  let r = Simplex.solve_model m in
  Alcotest.check lp_status "status" Status.Lp_optimal r.Simplex.status;
  check_feq "x" (-1.) r.Simplex.primal.(x);
  check_feq "y" (-3.) r.Simplex.primal.(y)

(* Random LPs: the simplex result must satisfy all constraints, and no
   random feasible point may beat its objective. *)
let random_lp_spec =
  QCheck2.Gen.(
    let* nvars = int_range 2 6 in
    let* nrows = int_range 1 8 in
    let coef = float_range (-5.) 5. in
    let* obj = list_size (return nvars) coef in
    let* rows =
      list_size (return nrows)
        (let* cs = list_size (return nvars) coef in
         let* rhs = float_range 0. 20. in
         let* sense = oneofl [ Model.Le; Model.Ge ] in
         return (cs, sense, rhs))
    in
    return (nvars, obj, rows))

let build_lp (nvars, obj, rows) =
  let m = Model.create () in
  let vars = List.init nvars (fun i -> Model.add_var m ~lb:0. ~ub:10. (Printf.sprintf "x%d" i)) in
  List.iter
    (fun (cs, sense, rhs) ->
      Model.add_constr m (Lin.of_list (List.map2 (fun c v -> (c, v)) cs vars)) sense rhs)
    rows;
  Model.set_objective m Model.Minimize (Lin.of_list (List.map2 (fun c v -> (c, v)) obj vars));
  (m, vars)

let prop_simplex_sound =
  QCheck2.Test.make ~name:"simplex: optimal solutions are feasible and undominated" ~count:300
    random_lp_spec (fun spec ->
      let m, vars = build_lp spec in
      let r = Simplex.solve_model m in
      match r.Simplex.status with
      | Status.Lp_optimal ->
          let ok = Model.check_feasible ~tol:1e-5 m (fun v -> r.Simplex.primal.(v)) in
          if Result.is_error ok then false
          else begin
            let rng = Random.State.make [| 7 |] in
            let beaten = ref false in
            for _ = 1 to 50 do
              let pt = List.map (fun _ -> Random.State.float rng 10.) vars in
              let value v = List.nth pt v in
              if Result.is_ok (Model.check_feasible ~tol:1e-9 m value) then begin
                let _, obj_expr = Model.objective m in
                if Lin.eval value obj_expr < r.Simplex.objective -. 1e-5 then beaten := true
              end
            done;
            not !beaten
          end
      | Status.Lp_infeasible ->
          let rng = Random.State.make [| 11 |] in
          let found = ref false in
          for _ = 1 to 200 do
            let pt = List.map (fun _ -> Random.State.float rng 10.) vars in
            let value v = List.nth pt v in
            if Result.is_ok (Model.check_feasible ~tol:1e-9 m value) then found := true
          done;
          not !found
      | Status.Lp_unbounded | Status.Lp_iteration_limit -> false)

(* ------------------------------------------------------------------ *)
(* Warm-started dual simplex                                           *)
(* ------------------------------------------------------------------ *)

let test_warm_restart_textbook () =
  (* Cold solve of the textbook LP, then tighten x <= 1 and warm
     re-solve from the optimal basis: max 3x + 5y under x <= 1, 2y <= 12,
     3x + 2y <= 18 is 33 at (1, 6).  The warm path must be taken (the
     result says which path ran) and must agree with a cold solve. *)
  let m = Model.create () in
  let x = Model.add_var m "x" and y = Model.add_var m "y" in
  Model.add_constr m (Lin.var x) Model.Le 4.;
  Model.add_constr m (Lin.term 2. y) Model.Le 12.;
  Model.add_constr m (Lin.of_list [ (3., x); (2., y) ]) Model.Le 18.;
  Model.set_objective m Model.Maximize (Lin.of_list [ (3., x); (5., y) ]);
  let p = Simplex.of_model m in
  let n = p.Simplex.ncols in
  let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
  let r0 = Simplex.solve p ~lb ~ub in
  Alcotest.check lp_status "cold status" Status.Lp_optimal r0.Simplex.status;
  let basis =
    match r0.Simplex.basis with
    | Some b -> b
    | None -> Alcotest.fail "optimal cold solve must expose its basis"
  in
  ub.(x) <- 1.;
  let r1 = Simplex.solve ~basis p ~lb ~ub in
  Alcotest.check lp_status "warm status" Status.Lp_optimal r1.Simplex.status;
  Alcotest.(check bool) "warm path taken" true (r1.Simplex.warm = Simplex.Warm);
  check_feq "warm objective" (-33.) r1.Simplex.objective;
  check_feq "warm x" 1. r1.Simplex.primal.(x);
  check_feq "warm y" 6. r1.Simplex.primal.(y)

let test_warm_detects_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:10. "x" in
  Model.add_constr m (Lin.var x) Model.Ge 5.;
  Model.set_objective m Model.Minimize (Lin.var x);
  let p = Simplex.of_model m in
  let lb = [| 0. |] and ub = [| 10. |] in
  let r0 = Simplex.solve p ~lb ~ub in
  let basis = Option.get r0.Simplex.basis in
  (* Branching-style tightening x <= 4 contradicts x >= 5. *)
  let r1 = Simplex.solve ~basis p ~lb ~ub:[| 4. |] in
  Alcotest.check lp_status "warm infeasible" Status.Lp_infeasible r1.Simplex.status

(* Random bounded LPs re-solved after random bound tightenings: the
   warm-started result must match a cold solve in status and (at
   optimality) objective. *)
let prop_warm_matches_cold =
  QCheck2.Test.make ~name:"simplex: warm re-solve after bound tightenings matches cold"
    ~count:300
    QCheck2.Gen.(
      tup2 random_lp_spec
        (list_size (int_range 1 5) (tup3 (int_range 0 11) bool (float_range 0. 10.))))
    (fun (spec, tightenings) ->
      let m, _ = build_lp spec in
      let p = Simplex.of_model m in
      let n = p.Simplex.ncols in
      let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
      let r0 = Simplex.solve p ~lb ~ub in
      match (r0.Simplex.status, r0.Simplex.basis) with
      | Status.Lp_optimal, Some basis ->
          List.iter
            (fun (j, is_lb, v) ->
              let j = j mod n in
              if is_lb then lb.(j) <- Float.max lb.(j) (Float.floor v)
              else ub.(j) <- Float.min ub.(j) (Float.ceil v))
            tightenings;
          let warm = Simplex.solve ~basis p ~lb ~ub in
          let cold = Simplex.solve p ~lb ~ub in
          warm.Simplex.status = cold.Simplex.status
          && (warm.Simplex.status <> Status.Lp_optimal
             || feq ~eps:1e-6 warm.Simplex.objective cold.Simplex.objective)
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Presolve                                                            *)
(* ------------------------------------------------------------------ *)

let run_presolve m =
  let p = Simplex.of_model m in
  let n = Model.nvars m in
  Presolve.run p
    ~integer:(Array.init n (Model.is_integer m))
    ~lb:(Array.init n (Model.var_lb m))
    ~ub:(Array.init n (Model.var_ub m))

let test_presolve_singleton_bound () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:10. "x" in
  Model.add_constr m (Lin.term 2. x) Model.Le 6.;
  match run_presolve m with
  | Presolve.Feasible { ub; active; _ } ->
      check_feq "tightened ub" 3. ub.(x);
      Alcotest.(check bool) "row now redundant" false active.(0)
  | Presolve.Proven_infeasible e -> Alcotest.fail e

let test_presolve_integer_rounding () =
  let m = Model.create () in
  let x = Model.add_var m ~kind:Model.Integer ~ub:10. "x" in
  Model.add_constr m (Lin.term 2. x) Model.Le 7.;
  match run_presolve m with
  | Presolve.Feasible { ub; _ } -> check_feq "floor(3.5)" 3. ub.(x)
  | Presolve.Proven_infeasible e -> Alcotest.fail e

let test_presolve_detects_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:1. "x" in
  let y = Model.add_var m ~ub:1. "y" in
  Model.add_constr m (Lin.of_list [ (1., x); (1., y) ]) Model.Ge 3.;
  match run_presolve m with
  | Presolve.Proven_infeasible _ -> ()
  | Presolve.Feasible _ -> Alcotest.fail "expected infeasibility"

let test_presolve_chain_propagation () =
  let m = Model.create () in
  let x = Model.add_var m ~lb:5. ~ub:5. "x" in
  let y = Model.add_var m ~ub:10. "y" in
  Model.add_constr m (Lin.of_list [ (1., x); (2., y) ]) Model.Le 7.;
  match run_presolve m with
  | Presolve.Feasible { ub; _ } -> check_feq "propagated ub" 1. ub.(y)
  | Presolve.Proven_infeasible e -> Alcotest.fail e

let test_presolve_strengthen_clique () =
  (* 5x + 3y <= 7 over binaries: strengthening pulls both coefficients
     down to the clique row x + y <= 1 (same integer points, tighter
     LP relaxation). *)
  let m = Model.create () in
  let x = Model.add_binary m "x" in
  let y = Model.add_binary m "y" in
  Model.add_constr m (Lin.of_list [ (5., x); (3., y) ]) Model.Le 7.;
  let p = Simplex.of_model m in
  let integer = [| true; true |] in
  let lb = [| 0.; 0. |] and ub = [| 1.; 1. |] in
  let p', changed = Presolve.strengthen p ~integer ~lb ~ub in
  Alcotest.(check int) "both coefficients strengthened" 2 changed;
  check_feq "x coefficient" 1. (snd p'.Simplex.rows.(0).(0));
  check_feq "y coefficient" 1. (snd p'.Simplex.rows.(0).(1));
  check_feq "rhs" 1. p'.Simplex.rhs.(0);
  (* the original problem must not be mutated *)
  check_feq "original x coefficient intact" 5. (snd p.Simplex.rows.(0).(0));
  (* integer points preserved: exactly (0,0), (1,0), (0,1) in both *)
  List.iter
    (fun (vx, vy) ->
      let before = (5. *. vx) +. (3. *. vy) <= 7. in
      let after = vx +. vy <= 1. in
      Alcotest.(check bool)
        (Printf.sprintf "point (%g, %g) preserved" vx vy)
        before after)
    [ (0., 0.); (1., 0.); (0., 1.); (1., 1.) ]

let test_presolve_strengthen_ge_row () =
  (* >= rows strengthen through negation: 5x + 3y >= 1 over binaries
     becomes x + y >= ... ; here max activity of the negated row
     -5x - 3y <= -1 is 0, d = -1 - 0 + 5 = 4 for x (0 < 4 < 5) and the
     row strengthens to the set-covering row x + y >= 1. *)
  let m = Model.create () in
  let x = Model.add_binary m "x" in
  let y = Model.add_binary m "y" in
  Model.add_constr m (Lin.of_list [ (5., x); (3., y) ]) Model.Ge 1.;
  let p = Simplex.of_model m in
  let p', changed = Presolve.strengthen p ~integer:[| true; true |] ~lb:[| 0.; 0. |] ~ub:[| 1.; 1. |] in
  Alcotest.(check int) "both coefficients strengthened" 2 changed;
  check_feq "x coefficient" 1. (snd p'.Simplex.rows.(0).(0));
  check_feq "y coefficient" 1. (snd p'.Simplex.rows.(0).(1));
  check_feq "rhs" 1. p'.Simplex.rhs.(0)

let test_presolve_no_false_positives =
  QCheck2.Test.make ~name:"presolve: never cuts off LP-feasible boxes" ~count:200 random_lp_spec
    (fun spec ->
      let m, _ = build_lp spec in
      let r = Simplex.solve_model m in
      match (r.Simplex.status, run_presolve m) with
      | Status.Lp_optimal, Presolve.Proven_infeasible _ -> false
      | Status.Lp_optimal, Presolve.Feasible { lb; ub; _ } ->
          let ok = ref true in
          Array.iteri
            (fun j v -> if v < lb.(j) -. 1e-6 || v > ub.(j) +. 1e-6 then ok := false)
            r.Simplex.primal;
          !ok
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Branch & bound                                                      *)
(* ------------------------------------------------------------------ *)

let mip_status = Alcotest.testable (Fmt.of_to_string Status.mip_status_to_string) ( = )

let test_bb_knapsack () =
  let m = Model.create () in
  let a = Model.add_binary m "a" and b = Model.add_binary m "b" in
  let c = Model.add_binary m "c" and d = Model.add_binary m "d" in
  Model.add_constr m (Lin.of_list [ (4., a); (6., b); (3., c); (5., d) ]) Model.Le 10.;
  Model.set_objective m Model.Maximize (Lin.of_list [ (10., a); (13., b); (7., c); (11., d) ]);
  let r = Branch_bound.solve m in
  Alcotest.check mip_status "status" Status.Mip_optimal r.Branch_bound.status;
  check_feq "objective" 23. r.Branch_bound.objective

let test_bb_integer_min () =
  let m = Model.create () in
  let x = Model.add_var m ~kind:Model.Integer "x" in
  let y = Model.add_var m ~kind:Model.Integer "y" in
  Model.add_constr m (Lin.of_list [ (1., x); (2., y) ]) Model.Ge 7.;
  Model.add_constr m (Lin.of_list [ (2., x); (1., y) ]) Model.Ge 8.;
  Model.set_objective m Model.Minimize (Lin.of_list [ (3., x); (4., y) ]);
  let r = Branch_bound.solve m in
  check_feq "objective" 17. r.Branch_bound.objective;
  check_feq "x" 3. (Branch_bound.value r x);
  check_feq "y" 2. (Branch_bound.value r y)

let test_bb_infeasible () =
  let m = Model.create () in
  let x = Model.add_binary m "x" and y = Model.add_binary m "y" in
  Model.add_constr m (Lin.of_list [ (1., x); (1., y) ]) Model.Ge 3.;
  let r = Branch_bound.solve m in
  Alcotest.check mip_status "status" Status.Mip_infeasible r.Branch_bound.status

let test_bb_lp_feasible_mip_infeasible () =
  let m = Model.create () in
  let x = Model.add_binary m "x" in
  Model.add_constr m (Lin.term 2. x) Model.Eq 1.;
  let r = Branch_bound.solve m in
  Alcotest.check mip_status "status" Status.Mip_infeasible r.Branch_bound.status

let test_bb_equality_partition () =
  let m = Model.create () in
  let xs = List.init 5 (fun i -> Model.add_binary m (Printf.sprintf "x%d" i)) in
  Model.add_constr m (Lin.of_list (List.map (fun v -> (1., v)) xs)) Model.Eq 1.;
  Model.set_objective m Model.Minimize
    (Lin.of_list (List.mapi (fun i v -> (float_of_int (5 - i), v)) xs));
  let r = Branch_bound.solve m in
  check_feq "cheapest selected" 1. r.Branch_bound.objective

let test_bb_respects_bound () =
  let m = Model.create () in
  let x = Model.add_var m ~kind:Model.Integer ~lb:2. ~ub:7. "x" in
  Model.set_objective m Model.Maximize (Lin.var x);
  let r = Branch_bound.solve m in
  check_feq "hits ub" 7. r.Branch_bound.objective;
  check_feq "gap closed" 0. (Branch_bound.gap r)

(* Brute force over binary assignments for cross-checking. *)
let brute_force_binary m nvars =
  let best = ref None in
  let dir, obj_expr = Model.objective m in
  for mask = 0 to (1 lsl nvars) - 1 do
    let value v = if (mask lsr v) land 1 = 1 then 1.0 else 0.0 in
    if Result.is_ok (Model.check_feasible ~tol:1e-9 m value) then begin
      let obj = Lin.eval value obj_expr in
      match !best with
      | None -> best := Some obj
      | Some b ->
          best :=
            Some
              (match dir with
              | Model.Minimize -> Float.min b obj
              | Model.Maximize -> Float.max b obj)
    end
  done;
  !best

let random_bip =
  QCheck2.Gen.(
    let* nvars = int_range 2 8 in
    let* nrows = int_range 1 6 in
    let coef = float_range (-4.) 4. in
    let* obj = list_size (return nvars) coef in
    let* rows =
      list_size (return nrows)
        (let* cs = list_size (return nvars) coef in
         let* rhs = float_range (-2.) 8. in
         let* sense = oneofl [ Model.Le; Model.Ge ] in
         return (cs, sense, rhs))
    in
    return (nvars, obj, rows))

let prop_bb_matches_brute_force =
  QCheck2.Test.make ~name:"branch&bound: agrees with brute force on binary programs" ~count:150
    random_bip (fun (nvars, obj, rows) ->
      let m = Model.create () in
      let vars = List.init nvars (fun i -> Model.add_binary m (Printf.sprintf "b%d" i)) in
      List.iter
        (fun (cs, sense, rhs) ->
          Model.add_constr m (Lin.of_list (List.map2 (fun c v -> (c, v)) cs vars)) sense rhs)
        rows;
      Model.set_objective m Model.Minimize
        (Lin.of_list (List.map2 (fun c v -> (c, v)) obj vars));
      let r = Branch_bound.solve m in
      match (brute_force_binary m nvars, r.Branch_bound.status) with
      | None, Status.Mip_infeasible -> true
      | None, _ -> r.Branch_bound.solution = None
      | Some best, Status.Mip_optimal -> feq ~eps:1e-5 best r.Branch_bound.objective
      | Some _, _ -> false)

let prop_bb_solution_is_feasible =
  QCheck2.Test.make ~name:"branch&bound: incumbents satisfy the model" ~count:150 random_bip
    (fun (nvars, obj, rows) ->
      let m = Model.create () in
      let vars = List.init nvars (fun i -> Model.add_binary m (Printf.sprintf "b%d" i)) in
      List.iter
        (fun (cs, sense, rhs) ->
          Model.add_constr m (Lin.of_list (List.map2 (fun c v -> (c, v)) cs vars)) sense rhs)
        rows;
      Model.set_objective m Model.Maximize
        (Lin.of_list (List.map2 (fun c v -> (c, v)) obj vars));
      let r = Branch_bound.solve m in
      match r.Branch_bound.solution with
      | None -> true
      | Some x -> Result.is_ok (Model.check_feasible ~tol:1e-5 m (fun v -> x.(v))))


(* Regression for the warm-start rewiring: full branch & bound runs on
   the same model with warm starts on and off must agree on status and,
   at optimality, objective (default options prove optimality, so tree
   order differences cannot change the answer). *)
let prop_bb_warm_start_invariant =
  QCheck2.Test.make ~name:"branch&bound: warm starts leave status and objective unchanged"
    ~count:100 random_bip (fun (nvars, obj, rows) ->
      let m = Model.create () in
      let vars = List.init nvars (fun i -> Model.add_binary m (Printf.sprintf "b%d" i)) in
      List.iter
        (fun (cs, sense, rhs) ->
          Model.add_constr m (Lin.of_list (List.map2 (fun c v -> (c, v)) cs vars)) sense rhs)
        rows;
      Model.set_objective m Model.Minimize
        (Lin.of_list (List.map2 (fun c v -> (c, v)) obj vars));
      let warm = Branch_bound.solve m in
      let cold =
        Branch_bound.solve
          ~options:{ Branch_bound.default_options with Branch_bound.warm_start = false }
          m
      in
      cold.Branch_bound.lp_warm = 0
      && warm.Branch_bound.status = cold.Branch_bound.status
      && (warm.Branch_bound.status <> Status.Mip_optimal
         || feq ~eps:1e-5 warm.Branch_bound.objective cold.Branch_bound.objective))

(* ------------------------------------------------------------------ *)
(* Cutting planes                                                      *)
(* ------------------------------------------------------------------ *)

let build_bip (nvars, obj, rows) =
  let m = Model.create () in
  let vars = List.init nvars (fun i -> Model.add_binary m (Printf.sprintf "b%d" i)) in
  List.iter
    (fun (cs, sense, rhs) ->
      Model.add_constr m (Lin.of_list (List.map2 (fun c v -> (c, v)) cs vars)) sense rhs)
    rows;
  Model.set_objective m Model.Minimize (Lin.of_list (List.map2 (fun c v -> (c, v)) obj vars));
  m

let prop_presolve_strengthen_preserves_integer_points =
  QCheck2.Test.make ~name:"presolve: strengthening preserves every integer-feasible point"
    ~count:300 random_bip (fun ((nvars, _, _) as spec) ->
      let m = build_bip spec in
      let p = Simplex.of_model m in
      let n = p.Simplex.ncols in
      let integer = Array.init n (Model.is_integer m) in
      let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
      let p', _ = Presolve.strengthen p ~integer ~lb ~ub in
      let sat (q : Simplex.problem) x =
        let ok = ref true in
        Array.iteri
          (fun i row ->
            let lhs = Array.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0. row in
            let rhs = q.Simplex.rhs.(i) in
            match q.Simplex.senses.(i) with
            | Model.Le -> if lhs > rhs +. 1e-7 then ok := false
            | Model.Ge -> if lhs < rhs -. 1e-7 then ok := false
            | Model.Eq -> if Float.abs (lhs -. rhs) > 1e-7 then ok := false)
          q.Simplex.rows;
        !ok
      in
      let ok = ref true in
      for mask = 0 to (1 lsl nvars) - 1 do
        let x = Array.init n (fun v -> float_of_int ((mask lsr v) land 1)) in
        if sat p x <> sat p' x then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Reduction stack + postsolve                                         *)
(* ------------------------------------------------------------------ *)

let run_reduce ?passes ?essential ?reuse m =
  let p = Simplex.of_model m in
  let n = Model.nvars m in
  Presolve.reduce ?passes ?essential ?reuse p
    ~integer:(Array.init n (Model.is_integer m))
    ~lb:(Array.init n (Model.var_lb m))
    ~ub:(Array.init n (Model.var_ub m))

(* Postsolve roundtrip on LPs: reduce, solve the reduced problem,
   restore.  The restored point must be feasible for the original model
   and evaluate the original objective within 1e-9 of the reduced
   objective (the mapping itself is exact up to rounding; obj_const
   folds every eliminated column).  Full-vs-reduced solver parity is
   checked at LP tolerance — two independent simplex runs may stop at
   alternate vertices up to ~1e-7 apart in objective. *)
let prop_reduce_roundtrip_lp =
  QCheck2.Test.make
    ~name:"reduce: postsolve maps reduced LP optima back exactly (1e-9)" ~count:300
    random_lp_spec (fun spec ->
      let m, _ = build_lp spec in
      let full = Simplex.solve_model m in
      match run_reduce m with
      | Presolve.Reduce_infeasible _ -> full.Simplex.status = Status.Lp_infeasible
      | Presolve.Reduced red -> (
          let r =
            Simplex.solve red.Presolve.red_problem ~lb:red.Presolve.red_lb
              ~ub:red.Presolve.red_ub
          in
          match (full.Simplex.status, r.Simplex.status) with
          | Status.Lp_optimal, Status.Lp_optimal ->
              let x = Postsolve.restore red.Presolve.red_post r.Simplex.primal in
              feq ~eps:1e-5 full.Simplex.objective r.Simplex.objective
              && Result.is_ok (Model.check_feasible ~tol:1e-6 m (fun v -> x.(v)))
              && feq ~eps:1e-9 r.Simplex.objective
                   (Lin.eval (fun v -> x.(v)) (snd (Model.objective m)))
          | Status.Lp_infeasible, Status.Lp_infeasible -> true
          | _ -> false))

(* Routing-shaped 0-1 programs: exactly-one selector rows (one per
   group, the shape of the paper's one-path rows) plus nonnegative
   capacity rows — the structure probing and parallel-row detection are
   aimed at. *)
let random_routing_bip =
  QCheck2.Gen.(
    let* ngroups = int_range 1 3 in
    let* per = int_range 2 3 in
    let nvars = ngroups * per in
    let* obj = list_size (return nvars) (float_range (-4.) 4.) in
    let* caps =
      list_size (int_range 1 4)
        (let* cs = list_size (return nvars) (float_range 0. 5.) in
         let* rhs = float_range 1. 10. in
         return (cs, rhs))
    in
    return (ngroups, per, obj, caps))

let build_routing_bip (ngroups, per, obj, caps) =
  let m = Model.create () in
  let nvars = ngroups * per in
  let vars = List.init nvars (fun i -> Model.add_binary m (Printf.sprintf "s%d" i)) in
  for g = 0 to ngroups - 1 do
    Model.add_constr m
      (Lin.of_list (List.init per (fun k -> (1., List.nth vars ((g * per) + k)))))
      Model.Eq 1.
  done;
  List.iter
    (fun (cs, rhs) ->
      Model.add_constr m (Lin.of_list (List.map2 (fun c v -> (c, v)) cs vars)) Model.Le rhs)
    caps;
  Model.set_objective m Model.Minimize
    (Lin.of_list (List.map2 (fun c v -> (c, v)) obj vars));
  (m, nvars)

(* Brute force over the binary columns of a reduced problem; objective
   values include [obj_const].  Returns the best point with its value. *)
let brute_force_reduction (red : Presolve.reduction) =
  let p = red.Presolve.red_problem in
  let n = p.Simplex.ncols in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun j -> float_of_int ((mask lsr j) land 1)) in
    let ok = ref true in
    Array.iteri
      (fun j v ->
        if v < red.Presolve.red_lb.(j) -. 1e-9 || v > red.Presolve.red_ub.(j) +. 1e-9 then
          ok := false)
      x;
    if !ok then begin
      Array.iteri
        (fun i row ->
          if !ok then begin
            let lhs = Array.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0. row in
            let rhs = p.Simplex.rhs.(i) in
            match p.Simplex.senses.(i) with
            | Model.Le -> if lhs > rhs +. 1e-9 then ok := false
            | Model.Ge -> if lhs < rhs -. 1e-9 then ok := false
            | Model.Eq -> if Float.abs (lhs -. rhs) > 1e-9 then ok := false
          end)
        p.Simplex.rows;
      if !ok then begin
        let obj = ref p.Simplex.obj_const in
        Array.iteri (fun j v -> obj := !obj +. (p.Simplex.obj.(j) *. v)) x;
        match !best with
        | Some (_, b) when b <= !obj -> ()
        | _ -> best := Some (x, !obj)
      end
    end
  done;
  !best

(* The MILP roundtrip with an exact solver on both sides: brute force on
   the reduced problem, restored through postsolve, must agree with
   brute force on the original to 1e-9, and the restored optimum must be
   feasible for the original model. *)
let prop_reduce_roundtrip_routing_milp =
  QCheck2.Test.make
    ~name:"reduce: postsolve(brute(reduce(milp))) = brute(milp) to 1e-9 on routing MILPs"
    ~count:200 random_routing_bip (fun spec ->
      let m, nvars = build_routing_bip spec in
      let direct = brute_force_binary m nvars in
      match run_reduce m with
      | Presolve.Reduce_infeasible _ -> direct = None
      | Presolve.Reduced red -> (
          match (direct, brute_force_reduction red) with
          | None, None -> true
          | Some best, Some (xr, redbest) ->
              let x = Postsolve.restore red.Presolve.red_post xr in
              feq ~eps:1e-9 best redbest
              && Result.is_ok (Model.check_feasible ~tol:1e-6 m (fun v -> x.(v)))
          | None, Some _ | Some _, None -> false))

let test_strengthen_ge_wide_box () =
  (* Non-unit integer box through the >= negation path: 5x + y >= 2 with
     x integer in [0, 2] and y continuous in [0, 1].  On the negated row
     -5x - y <= -2 the max activity is 0, so d = -2 - 0 + 5 = 3 for x
     (0 < 3 < 5) and the row strengthens to 2x + y >= 2 — the same
     integer points (x = 0 remains impossible, x >= 1 remains free) with
     a tighter LP relaxation. *)
  let m = Model.create () in
  let x = Model.add_var m ~kind:Model.Integer ~ub:2. "x" in
  let y = Model.add_var m ~ub:1. "y" in
  Model.add_constr m (Lin.of_list [ (5., x); (1., y) ]) Model.Ge 2.;
  let p = Simplex.of_model m in
  let p', changed =
    Presolve.strengthen p ~integer:[| true; false |] ~lb:[| 0.; 0. |] ~ub:[| 2.; 1. |]
  in
  Alcotest.(check int) "one coefficient strengthened" 1 changed;
  check_feq "x coefficient" 2. (snd p'.Simplex.rows.(0).(0));
  check_feq "y coefficient intact" 1. (snd p'.Simplex.rows.(0).(1));
  check_feq "rhs" 2. p'.Simplex.rhs.(0);
  List.iter
    (fun (vx, vy) ->
      Alcotest.(check bool)
        (Printf.sprintf "point (%g, %g) preserved" vx vy)
        ((5. *. vx) +. vy >= 2.)
        ((2. *. vx) +. vy >= 2.))
    [ (0., 0.); (0., 1.); (1., 0.); (1., 1.); (2., 0.); (2., 1.) ]

(* One model exercising every elimination: x fixed by an equality row,
   e an empty column parked at its objective-preferred bound, z a free
   column singleton substituted out of z + w = 4, and w/u surviving in a
   genuine capacity row. *)
let reduction_fixture () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:10. "x" in
  let e = Model.add_var m ~ub:5. "e" in
  let z = Model.add_var m ~ub:10. "z" in
  let w = Model.add_var m ~ub:1. "w" in
  let u = Model.add_var m ~ub:1. "u" in
  Model.add_constr m (Lin.var x) Model.Eq 3.;
  Model.add_constr m (Lin.of_list [ (1., z); (1., w) ]) Model.Eq 4.;
  Model.add_constr m (Lin.of_list [ (1., w); (1., u) ]) Model.Le 0.8;
  Model.set_objective m Model.Minimize
    (Lin.of_list [ (1., x); (2., e); (1., z); (1., u) ]);
  (m, (x, e, z, w, u))

let test_reduce_postsolve_fixture () =
  let m, (x, e, z, w, u) = reduction_fixture () in
  match run_reduce m with
  | Presolve.Reduce_infeasible err -> Alcotest.fail err
  | Presolve.Reduced red ->
      let post = red.Presolve.red_post in
      Alcotest.(check int) "reduced to two columns" 2 red.Presolve.red_problem.Simplex.ncols;
      Alcotest.(check int) "reduced to one row" 1
        (Array.length red.Presolve.red_problem.Simplex.rows);
      (match Postsolve.col_state post x with
      | Postsolve.Fixed f ->
          check_feq "x fixed value" 3. f.Postsolve.fx_value;
          Alcotest.(check bool) "x fix is forced" true f.Postsolve.fx_forced
      | _ -> Alcotest.fail "x should be fixed");
      (match Postsolve.col_state post e with
      | Postsolve.Fixed f ->
          check_feq "e parked at lb" 0. f.Postsolve.fx_value;
          Alcotest.(check bool) "e fix is a choice" false f.Postsolve.fx_forced
      | _ -> Alcotest.fail "e should be fixed (empty column)");
      (match Postsolve.col_state post z with
      | Postsolve.Substituted -> ()
      | _ -> Alcotest.fail "z should be substituted");
      (match (Postsolve.col_state post w, Postsolve.col_state post u) with
      | Postsolve.Kept 0, Postsolve.Kept 1 -> ()
      | _ -> Alcotest.fail "w/u should be kept in order");
      Alcotest.(check int) "kept row is the capacity row" 2 post.Postsolve.row_of_red.(0);
      (* restore scatters kept values and recomputes z = 4 - w *)
      let full = Postsolve.restore post [| 0.8; 0. |] in
      Alcotest.(check int) "restore length" 5 (Array.length full);
      check_feq "restored x" 3. full.(x);
      check_feq "restored e" 0. full.(e);
      check_feq "restored z" 3.2 full.(z);
      check_feq "restored w" 0.8 full.(w);
      check_feq "restored u" 0. full.(u);
      (* restrict drops eliminated columns; choice fixes may disagree *)
      (match Postsolve.restrict post [| 3.; 4.; 3.5; 0.5; 0.1 |] with
      | Some xr ->
          check_feq "restricted w" 0.5 xr.(0);
          check_feq "restricted u" 0.1 xr.(1)
      | None -> Alcotest.fail "restrict should accept a point matching the forced fix");
      (match Postsolve.restrict post [| 2.; 0.; 3.5; 0.5; 0.1 |] with
      | None -> ()
      | Some _ -> Alcotest.fail "restrict must reject a violated forced fixing");
      (* objective parity: reduced solve (obj_const folded) = full solve *)
      let full_r = Simplex.solve_model m in
      let red_r =
        Simplex.solve red.Presolve.red_problem ~lb:red.Presolve.red_lb
          ~ub:red.Presolve.red_ub
      in
      Alcotest.check lp_status "full optimal" Status.Lp_optimal full_r.Simplex.status;
      Alcotest.check lp_status "reduced optimal" Status.Lp_optimal red_r.Simplex.status;
      check_feq "objective parity" full_r.Simplex.objective red_r.Simplex.objective;
      check_feq "known optimum" 6.2 red_r.Simplex.objective;
      (* honest per-pass stats: one entry per pass, removals where due *)
      Alcotest.(check int) "stats cover every pass" (List.length Presolve.all_passes)
        (List.length red.Presolve.red_stats);
      let stat pass =
        List.find (fun s -> s.Presolve.ps_pass = pass) red.Presolve.red_stats
      in
      Alcotest.(check int) "fix removed x" 1 (stat Presolve.Fix_columns).Presolve.ps_cols_removed;
      Alcotest.(check int) "empty removed e" 1
        (stat Presolve.Empty_columns).Presolve.ps_cols_removed;
      Alcotest.(check int) "subst removed z" 1 (stat Presolve.Substitute).Presolve.ps_cols_removed;
      Alcotest.(check int) "subst consumed its row" 1
        (stat Presolve.Substitute).Presolve.ps_rows_removed

let test_cuts_lift_restrict () =
  let m, (x, _e, z, w, _u) = reduction_fixture () in
  match run_reduce m with
  | Presolve.Reduce_infeasible err -> Alcotest.fail err
  | Presolve.Reduced red ->
      let post = red.Presolve.red_post in
      (* fixed column folds into the rhs, survivor renormalizes to unit
         L2: 0.6 x + 0.8 w <= 2 with x = 3 becomes w <= 0.25 *)
      let c = { Cuts.c_row = [| (x, 0.6); (w, 0.8) |]; c_rhs = 2.; c_origin = Cuts.Cover } in
      (match Cuts.restrict post c with
      | Some rc ->
          Alcotest.(check int) "one term survives" 1 (Array.length rc.Cuts.c_row);
          Alcotest.(check int) "term is reduced w" 0 (fst rc.Cuts.c_row.(0));
          check_feq "unit coefficient" 1. (snd rc.Cuts.c_row.(0));
          check_feq "folded rhs" 0.25 rc.Cuts.c_rhs;
          (* lift maps the reduced id back to the original column *)
          let lifted = Cuts.lift post rc in
          Alcotest.(check int) "lifted to original w" w (fst lifted.Cuts.c_row.(0));
          check_feq "lifted rhs unchanged" 0.25 lifted.Cuts.c_rhs
      | None -> Alcotest.fail "cut over kept+fixed columns must survive");
      (* substituted support drops the cut *)
      let cz = { Cuts.c_row = [| (z, 1.) |]; c_rhs = 4.; c_origin = Cuts.Cover } in
      Alcotest.(check bool) "substituted support drops" true (Cuts.restrict post cz = None);
      (* all-fixed support leaves nothing to cut *)
      let cx = { Cuts.c_row = [| (x, 1.) |]; c_rhs = 4.; c_origin = Cuts.Cover } in
      Alcotest.(check bool) "empty survivor drops" true (Cuts.restrict post cx = None)

(* Template re-apply: replaying a recorded trace against a row delta
   must land on exactly the reduction a from-scratch run reaches — same
   index maps, same fixpoint bounds, same reduced rows. *)
let check_same_reduction tag (a : Presolve.reduction) (b : Presolve.reduction) =
  let pa = a.Presolve.red_post and pb = b.Presolve.red_post in
  Alcotest.(check (array int))
    (tag ^ ": column map") pa.Postsolve.col_of_red pb.Postsolve.col_of_red;
  Alcotest.(check (array int)) (tag ^ ": row map") pa.Postsolve.row_of_red pb.Postsolve.row_of_red;
  Alcotest.(check int)
    (tag ^ ": reduced rows")
    (Array.length a.Presolve.red_problem.Simplex.rows)
    (Array.length b.Presolve.red_problem.Simplex.rows);
  Array.iteri
    (fun j v -> check_feq (Printf.sprintf "%s: lb %d" tag j) v b.Presolve.red_lb.(j))
    a.Presolve.red_lb;
  Array.iteri
    (fun j v -> check_feq (Printf.sprintf "%s: ub %d" tag j) v b.Presolve.red_ub.(j))
    a.Presolve.red_ub;
  let ra =
    Simplex.solve a.Presolve.red_problem ~lb:a.Presolve.red_lb ~ub:a.Presolve.red_ub
  in
  let rb =
    Simplex.solve b.Presolve.red_problem ~lb:b.Presolve.red_lb ~ub:b.Presolve.red_ub
  in
  Alcotest.(check bool) (tag ^ ": same LP status") true (ra.Simplex.status = rb.Simplex.status);
  if ra.Simplex.status = Status.Lp_optimal then
    check_feq (tag ^ ": same LP objective") ra.Simplex.objective rb.Simplex.objective

let test_reduce_reapply_matches_fresh () =
  let m = Model.create () in
  let a = Model.add_binary m "a" in
  let b = Model.add_binary m "b" in
  let c = Model.add_binary m "c" in
  let x = Model.add_var m ~ub:10. "x" in
  Model.add_constr m (Lin.of_list [ (1., a); (1., b); (1., c) ]) Model.Eq 1.;
  Model.add_constr m (Lin.of_list [ (2., a); (3., b); (4., c) ]) Model.Le 8.;
  Model.add_constr m (Lin.of_list [ (1., x); (-2., a) ]) Model.Le 5.;
  Model.set_objective m Model.Minimize
    (Lin.of_list [ (3., a); (2., b); (1., c); (1., x) ]);
  let p1 = Simplex.of_model m in
  let n = Model.nvars m in
  let integer = Array.init n (Model.is_integer m) in
  let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
  let trace =
    match Presolve.reduce p1 ~integer ~lb ~ub with
    | Presolve.Reduced r -> r.Presolve.red_trace
    | Presolve.Reduce_infeasible err -> Alcotest.fail err
  in
  (* In-place rewrite of the capacity row: rhs 8 -> 2.5 forces b = c = 0
     and hence a = 1 — the re-apply must taint a, b, c and rediscover
     the fixings a from-scratch run derives. *)
  let rhs2 = Array.copy p1.Simplex.rhs in
  rhs2.(1) <- 2.5;
  let p2 = { p1 with Simplex.rhs = rhs2 } in
  let fresh2 =
    match Presolve.reduce p2 ~integer ~lb ~ub with
    | Presolve.Reduced r -> r
    | Presolve.Reduce_infeasible err -> Alcotest.fail err
  in
  (match Presolve.reduce ~reuse:(trace, [ 1 ]) p2 ~integer ~lb ~ub with
  | Presolve.Reduced r ->
      Alcotest.(check bool) "delta run reports re-apply" true r.Presolve.red_reapplied;
      Alcotest.(check bool) "fresh run does not" false fresh2.Presolve.red_reapplied;
      check_same_reduction "rhs delta" fresh2 r
  | Presolve.Reduce_infeasible err -> Alcotest.fail err);
  (* Appended rows past the trace are treated as new automatically. *)
  let p3 =
    {
      p1 with
      Simplex.rows = Array.append p1.Simplex.rows [| [| (b, 1.); (c, 1.) |] |];
      senses = Array.append p1.Simplex.senses [| Model.Le |];
      rhs = Array.append p1.Simplex.rhs [| 0.5 |];
    }
  in
  let fresh3 =
    match Presolve.reduce p3 ~integer ~lb ~ub with
    | Presolve.Reduced r -> r
    | Presolve.Reduce_infeasible err -> Alcotest.fail err
  in
  match Presolve.reduce ~reuse:(trace, []) p3 ~integer ~lb ~ub with
  | Presolve.Reduced r ->
      Alcotest.(check bool) "appended-row run reports re-apply" true r.Presolve.red_reapplied;
      check_same_reduction "appended row" fresh3 r
  | Presolve.Reduce_infeasible err -> Alcotest.fail err

(* Separate every in-library cut family at the root LP of a random
   binary program and check that no integer-feasible point (enumerated
   by brute force) violates any of them — the defining property of a
   valid cut.  Clique and odd-cycle cuts come from the conflict table
   mined off the same rows, so this also exercises the miner. *)
let prop_cuts_never_cut_integer_points =
  QCheck2.Test.make ~name:"cuts: no separated cut excludes an integer-feasible point"
    ~count:300 random_bip (fun ((nvars, _, _) as spec) ->
      let m = build_bip spec in
      let p = Simplex.of_model m in
      let n = p.Simplex.ncols in
      let integer = Array.init n (Model.is_integer m) in
      let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
      let r = Simplex.solve p ~lb ~ub in
      match (r.Simplex.status, r.Simplex.basis) with
      | Status.Lp_optimal, Some basis ->
          let nrows = Array.length p.Simplex.rows in
          let tbl = Conflicts.build p ~nrows ~integer ~lb ~ub in
          let cuts =
            Cuts.gomory p ~integer ~lb ~ub basis ~max_cuts:16
            @ Cuts.covers p ~nrows ~integer ~lb ~ub ~x:r.Simplex.primal ~max_cuts:16
            @ Cuts.cliques tbl ~x:r.Simplex.primal ~max_cuts:8
            @ Cuts.odd_cycles tbl ~x:r.Simplex.primal ~max_cuts:8
          in
          let ok = ref true in
          for mask = 0 to (1 lsl nvars) - 1 do
            let value v = if (mask lsr v) land 1 = 1 then 1.0 else 0.0 in
            if Result.is_ok (Model.check_feasible ~tol:1e-9 m value) then begin
              let x = Array.init n value in
              List.iter (fun c -> if not (Cuts.satisfied c x) then ok := false) cuts
            end
          done;
          !ok
      | _ -> true)

let test_cover_cut_knapsack () =
  (* 4a + 6b + 3c + 5d <= 10 at the fractional point (1, 1, 0, 0.4):
     {b, d} weighs 11 > 10, so the minimal cover cut b + d <= 1 is
     violated (1.4) and must be separated. *)
  let m = Model.create () in
  let a = Model.add_binary m "a" and b = Model.add_binary m "b" in
  let c = Model.add_binary m "c" and d = Model.add_binary m "d" in
  Model.add_constr m (Lin.of_list [ (4., a); (6., b); (3., c); (5., d) ]) Model.Le 10.;
  let p = Simplex.of_model m in
  let n = p.Simplex.ncols in
  let integer = Array.init n (Model.is_integer m) in
  let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
  let x = [| 1.0; 1.0; 0.0; 0.4 |] in
  let cuts = Cuts.covers p ~nrows:1 ~integer ~lb ~ub ~x ~max_cuts:4 in
  Alcotest.(check bool) "a cover cut separates" true (cuts <> []);
  List.iter
    (fun cut ->
      Alcotest.(check bool) "violated at the fractional point" true
        (Cuts.violation cut x > 1e-6);
      (* and valid at every integer-feasible point *)
      for mask = 0 to 15 do
        let pt = Array.init 4 (fun v -> float_of_int ((mask lsr v) land 1)) in
        if (4. *. pt.(0)) +. (6. *. pt.(1)) +. (3. *. pt.(2)) +. (5. *. pt.(3)) <= 10. then
          Alcotest.(check bool) "integer point kept" true (Cuts.satisfied cut pt)
      done)
    cuts

let test_append_row_grows_basis () =
  (* Solving, appending a violated cut row, growing the standing basis
     with Basis.append_row, and warm re-solving must agree with a cold
     solve of the grown problem — and must take the warm path. *)
  let m = Model.create () in
  let x = Model.add_var m ~ub:4. "x" and y = Model.add_var m ~ub:4. "y" in
  Model.add_constr m (Lin.of_list [ (1., x); (2., y) ]) Model.Le 100.;
  Model.set_objective m Model.Maximize (Lin.of_list [ (2., x); (3., y) ]);
  let p = Simplex.of_model m in
  let lb = [| 0.; 0. |] and ub = [| 4.; 4. |] in
  let r0 = Simplex.solve p ~lb ~ub in
  Alcotest.check lp_status "base optimal" Status.Lp_optimal r0.Simplex.status;
  (* base optimum (4, 4) = 20 violates the row about to be appended *)
  check_feq "base objective" (-20.) r0.Simplex.objective;
  let basis = Option.get r0.Simplex.basis in
  let row = [| (0, 1.); (1, 1.) |] in
  let p' = Simplex.add_rows p [ (row, Model.Le, 5.) ] in
  let grown = Basis.append_row basis row in
  let warm = Simplex.solve ~basis:grown p' ~lb ~ub in
  let cold = Simplex.solve p' ~lb ~ub in
  Alcotest.check lp_status "warm optimal" Status.Lp_optimal warm.Simplex.status;
  Alcotest.(check bool) "warm path taken" true (warm.Simplex.warm = Simplex.Warm);
  check_feq "matches cold solve" cold.Simplex.objective warm.Simplex.objective;
  (* x + y <= 5 binds: max 2x + 3y is now 2*1 + 3*4 = 14 at (1, 4). *)
  check_feq "cut binds" (-14.) warm.Simplex.objective

let prop_bb_cuts_invariant =
  QCheck2.Test.make
    ~name:"branch&bound: cuts and rc-fixing leave status and objective unchanged" ~count:100
    random_bip (fun spec ->
      let m = build_bip spec in
      let with_cuts = Branch_bound.solve m in
      let without =
        Branch_bound.solve
          ~options:
            { Branch_bound.default_options with Branch_bound.cuts = false; rc_fixing = false }
          m
      in
      without.Branch_bound.cuts_separated = 0
      && without.Branch_bound.rc_fixed = 0
      && with_cuts.Branch_bound.status = without.Branch_bound.status
      && (with_cuts.Branch_bound.status <> Status.Mip_optimal
         || feq ~eps:1e-5 with_cuts.Branch_bound.objective without.Branch_bound.objective))

let test_bb_cutoff_prunes () =
  (* Knapsack optimum is 23; a cutoff at 23 must yield no solution
     (only strictly better ones are accepted) and Mip_unknown. *)
  let build () =
    let m = Model.create () in
    let a = Model.add_binary m "a" and b = Model.add_binary m "b" in
    let c = Model.add_binary m "c" and d = Model.add_binary m "d" in
    Model.add_constr m (Lin.of_list [ (4., a); (6., b); (3., c); (5., d) ]) Model.Le 10.;
    Model.set_objective m Model.Maximize (Lin.of_list [ (10., a); (13., b); (7., c); (11., d) ]);
    m
  in
  let opts cutoff = { Branch_bound.default_options with Branch_bound.cutoff } in
  let at = Branch_bound.solve ~options:(opts 23.) (build ()) in
  Alcotest.(check bool) "nothing beats the optimum" true (at.Branch_bound.solution = None);
  Alcotest.check mip_status "unknown, not infeasible" Status.Mip_unknown at.Branch_bound.status;
  let below = Branch_bound.solve ~options:(opts 20.) (build ()) in
  (* With a loose cutoff (20 for a maximization = "find something better
     than 20") the solver must still find 23. *)
  (match below.Branch_bound.solution with
  | Some _ -> check_feq "finds the optimum past the cutoff" 23. below.Branch_bound.objective
  | None -> Alcotest.fail "expected a solution better than 20")

let test_bb_cutoff_minimize () =
  let m = Model.create () in
  let x = Model.add_var m ~kind:Model.Integer ~lb:3. ~ub:9. "x" in
  Model.set_objective m Model.Minimize (Lin.var x);
  let options = { Branch_bound.default_options with Branch_bound.cutoff = 3. } in
  let r = Branch_bound.solve ~options m in
  Alcotest.(check bool) "min with cutoff at optimum" true (r.Branch_bound.solution = None)

let test_model_add_range () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:10. "x" in
  Model.add_range m 2. (Lin.term 1. x) 5.;
  Alcotest.(check int) "two rows" 2 (Model.nconstrs m);
  Model.set_objective m Model.Maximize (Lin.var x);
  check_feq "upper" 5. (Simplex.solve_model m).Simplex.objective;
  Model.set_objective m Model.Minimize (Lin.var x);
  check_feq "lower" 2. (Simplex.solve_model m).Simplex.objective

let prop_lin_add_commutative =
  QCheck2.Test.make ~name:"lin: addition commutative and associative" ~count:200
    QCheck2.Gen.(
      let term = tup2 (float_range (-5.) 5.) (int_range 0 6) in
      tup3 (list_size (int_range 0 6) term) (list_size (int_range 0 6) term)
        (list_size (int_range 0 6) term))
    (fun (a, b, c) ->
      let la = Lin.of_list a and lb = Lin.of_list b and lc = Lin.of_list c in
      (* Float addition is commutative exactly, associative only up to
         rounding — compare coefficients with a tolerance for the
         latter. *)
      let approx_equal x y =
        List.for_all
          (fun v -> Float.abs (Lin.coeff x v -. Lin.coeff y v) < 1e-9)
          (List.map fst (Lin.terms x) @ List.map fst (Lin.terms y))
      in
      Lin.equal (Lin.add la lb) (Lin.add lb la)
      && approx_equal (Lin.add la (Lin.add lb lc)) (Lin.add (Lin.add la lb) lc))

let prop_lin_eval_linear =
  QCheck2.Test.make ~name:"lin: eval is linear" ~count:200
    QCheck2.Gen.(
      let term = tup2 (float_range (-5.) 5.) (int_range 0 4) in
      tup3 (list_size (int_range 0 6) term) (list_size (int_range 0 6) term)
        (float_range (-3.) 3.))
    (fun (a, b, k) ->
      let la = Lin.of_list a and lb = Lin.of_list b in
      let v i = float_of_int (i + 1) *. 0.5 in
      let lhs = Lin.eval v (Lin.add (Lin.scale k la) lb) in
      let rhs = (k *. Lin.eval v la) +. Lin.eval v lb in
      Float.abs (lhs -. rhs) < 1e-6)

(* ------------------------------------------------------------------ *)
(* LP format                                                           *)
(* ------------------------------------------------------------------ *)

let test_lp_format_sections () =
  let m = Model.create () in
  let x = Model.add_var m ~kind:Model.Integer ~ub:9. "count" in
  let b = Model.add_binary m "pick me" in
  Model.add_constr m ~name:"cap" (Lin.of_list [ (1., x); (3., b) ]) Model.Le 7.;
  Model.set_objective m Model.Minimize (Lin.of_list [ (1., x); (2., b) ]);
  let s = Lp_format.to_string m in
  let has sub =
    Alcotest.(check bool)
      (Printf.sprintf "contains %S" sub)
      true
      (Astring.String.is_infix ~affix:sub s)
  in
  has "Minimize";
  has "Subject To";
  has "Bounds";
  has "Generals";
  has "Binaries";
  has "End";
  Alcotest.(check bool) "no raw space in names" false (Astring.String.is_infix ~affix:"pick me" s)

let test_lp_format_free_and_inf () =
  let m = Model.create () in
  let _ = Model.add_var m ~lb:neg_infinity ~ub:infinity "f" in
  let s = Lp_format.to_string m in
  Alcotest.(check bool) "free variable emitted" true (Astring.String.is_infix ~affix:"free" s)


let test_lp_reader_simple () =
  let text =
    {|Minimize
 obj: 3 x + 4 y
Subject To
 c1: x + 2 y >= 7
 c2: 2 x + y >= 8
Bounds
 0 <= x <= +inf
 0 <= y <= +inf
Generals
 x
 y
End
|}
  in
  match Lp_reader.parse text with
  | Error e -> Alcotest.fail e
  | Ok m ->
      Alcotest.(check int) "vars" 2 (Model.nvars m);
      Alcotest.(check int) "rows" 2 (Model.nconstrs m);
      Alcotest.(check bool) "integer" true (Model.is_integer m 0);
      let r = Branch_bound.solve m in
      check_feq "solves to 17" 17. r.Branch_bound.objective

let test_lp_reader_features () =
  let text =
    {|\ a comment line
Maximize
 obj: x - 2 y + 3
Subject To
 r: x + y <= 4
 eqrow: x - y = 1
Bounds
 -3 <= y <= 5
 x free
Binaries
Generals
End
|}
  in
  match Lp_reader.parse text with
  | Error e -> Alcotest.fail e
  | Ok m ->
      Alcotest.(check bool) "free lb" true (Model.var_lb m 0 = neg_infinity);
      check_feq "y lb" (-3.) (Model.var_lb m 1);
      check_feq "y ub" 5. (Model.var_ub m 1);
      let dir, obj = Model.objective m in
      Alcotest.(check bool) "maximize" true (dir = Model.Maximize);
      check_feq "objective constant" 3. (Lin.constant obj);
      let r = Simplex.solve_model m in
      (* max x - 2y + 3 s.t. x + y <= 4, x - y = 1, y in [-3, 5]:
         best at y = -3, x = -2 -> -2 + 6 + 3 = 7. *)
      check_feq "lp optimum" 7. r.Simplex.objective

let test_lp_reader_errors () =
  let bad txt frag =
    match Lp_reader.parse txt with
    | Ok _ -> Alcotest.fail ("expected failure for " ^ frag)
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" e frag)
          true
          (Astring.String.is_infix ~affix:frag e)
  in
  bad "Minimize obj: x Subject To r: x + y End" "expected a relation";
  bad "Minimize obj: x @" "unexpected character";
  bad "Minimize obj: x\nSubject To\n r: x <= y\nEnd" "right-hand side must be constant"

let prop_lp_roundtrip =
  QCheck2.Test.make ~name:"lp: write/read round-trips model semantics" ~count:60 random_bip
    (fun (nvars, obj, rows) ->
      let m = Model.create () in
      let vars = List.init nvars (fun i -> Model.add_binary m (Printf.sprintf "b%d" i)) in
      List.iter
        (fun (cs, sense, rhs) ->
          Model.add_constr m (Lin.of_list (List.map2 (fun c v -> (c, v)) cs vars)) sense rhs)
        rows;
      Model.set_objective m Model.Minimize
        (Lin.of_list (List.map2 (fun c v -> (c, v)) obj vars));
      match Lp_reader.parse (Lp_format.to_string m) with
      | Error _ -> false
      | Ok m2 ->
          let r1 = Branch_bound.solve m in
          let r2 = Branch_bound.solve m2 in
          (match (r1.Branch_bound.status, r2.Branch_bound.status) with
          | Status.Mip_optimal, Status.Mip_optimal ->
              feq ~eps:1e-5 r1.Branch_bound.objective r2.Branch_bound.objective
          | a, b -> a = b))

(* Structural round-trip: the re-read model must agree field by field
   (direction, objective coefficients and constant, rows, bounds,
   integrality) — not merely solve to the same optimum.  The reader
   assigns variable ids by first appearance in the text, so variables
   are matched through the writer's sanitized labels.  Coefficients are
   quarters so [%.12g] prints them exactly. *)
let prop_lp_structural_roundtrip =
  let gen =
    QCheck2.Gen.(
      let quarter = map (fun k -> float_of_int k /. 4.) (int_range (-40) 40) in
      let nz_quarter =
        map (fun k -> float_of_int (if k >= 0 then k + 1 else k) /. 4.) (int_range (-20) 19)
      in
      let var_gen =
        let* kind = int_range 0 2 in
        let* shape = int_range 0 4 in
        let* a = quarter in
        let* b = quarter in
        let lo = Float.min a b and hi = Float.max a b in
        let lb, ub =
          match shape with
          | 0 -> (0., Float.max hi 0.)
          | 1 -> (lo, hi)
          | 2 -> (neg_infinity, hi)
          | 3 -> (lo, infinity)
          | _ -> (neg_infinity, infinity)
        in
        return (kind, lb, ub)
      in
      let* nvars = int_range 1 5 in
      let* vars = list_size (return nvars) var_gen in
      let* obj = list_size (return nvars) (option nz_quarter) in
      let* obj_const = quarter in
      let* maximize = bool in
      let* rows =
        list_size (int_range 0 4)
          (let* cs = list_size (return nvars) (option nz_quarter) in
           let* sense = oneofl [ Model.Le; Model.Ge; Model.Eq ] in
           let* rhs = quarter in
           return (cs, sense, rhs))
      in
      return (vars, obj, obj_const, maximize, rows))
  in
  QCheck2.Test.make ~name:"lp: write/read reproduces model structure" ~count:150 gen
    (fun (vars, obj, obj_const, maximize, rows) ->
      let m = Model.create () in
      List.iteri
        (fun i (kind, lb, ub) ->
          let name = Printf.sprintf "x%d" i in
          match kind with
          | 2 -> ignore (Model.add_binary m name)
          | 1 -> ignore (Model.add_var m ~lb ~ub ~kind:Model.Integer name)
          | _ -> ignore (Model.add_var m ~lb ~ub name))
        vars;
      let terms coefs =
        Lin.of_list
          (List.concat
             (List.mapi
                (fun v c -> match c with Some c -> [ (c, v) ] | None -> [])
                coefs))
      in
      List.iter (fun (cs, sense, rhs) -> Model.add_constr m (terms cs) sense rhs) rows;
      Model.set_objective m
        (if maximize then Model.Maximize else Model.Minimize)
        (Lin.add_const (terms obj) obj_const);
      match Lp_reader.parse (Lp_format.to_string m) with
      | Error e -> QCheck2.Test.fail_reportf "re-read failed: %s" e
      | Ok m2 ->
          let nvars = Model.nvars m in
          if Model.nvars m2 <> nvars then
            QCheck2.Test.fail_reportf "nvars %d <> %d" (Model.nvars m2) nvars;
          (* Map original ids to re-read ids via the writer's labels. *)
          let lookup = Hashtbl.create 16 in
          for v2 = 0 to nvars - 1 do
            Hashtbl.replace lookup (Model.var_name m2 v2) v2
          done;
          let remap v =
            let label = Printf.sprintf "x%d_%d" v v in
            match Hashtbl.find_opt lookup label with
            | Some v2 -> v2
            | None -> QCheck2.Test.fail_reportf "variable %s lost on re-read" label
          in
          let beq a b = a = b || Float.abs (a -. b) <= 1e-9 in
          let check_expr what e e2 =
            if Lin.nterms e2 <> Lin.nterms e then
              QCheck2.Test.fail_reportf "%s: %d terms <> %d" what (Lin.nterms e2)
                (Lin.nterms e);
            Lin.iter
              (fun v c ->
                if not (beq (Lin.coeff e2 (remap v)) c) then
                  QCheck2.Test.fail_reportf "%s: coeff of x%d %g <> %g" what v
                    (Lin.coeff e2 (remap v)) c)
              e
          in
          let dir, e = Model.objective m in
          let dir2, e2 = Model.objective m2 in
          if dir2 <> dir then QCheck2.Test.fail_reportf "objective direction differs";
          if not (beq (Lin.constant e2) (Lin.constant e)) then
            QCheck2.Test.fail_reportf "objective constant %g <> %g" (Lin.constant e2)
              (Lin.constant e);
          check_expr "objective" e e2;
          for v = 0 to nvars - 1 do
            let v2 = remap v in
            if Model.var_kind m2 v2 <> Model.var_kind m v then
              QCheck2.Test.fail_reportf "x%d: kind differs" v;
            if not (beq (Model.var_lb m2 v2) (Model.var_lb m v)) then
              QCheck2.Test.fail_reportf "x%d: lb %g <> %g" v (Model.var_lb m2 v2)
                (Model.var_lb m v);
            if not (beq (Model.var_ub m2 v2) (Model.var_ub m v)) then
              QCheck2.Test.fail_reportf "x%d: ub %g <> %g" v (Model.var_ub m2 v2)
                (Model.var_ub m v)
          done;
          if Model.nconstrs m2 <> Model.nconstrs m then
            QCheck2.Test.fail_reportf "nconstrs %d <> %d" (Model.nconstrs m2)
              (Model.nconstrs m);
          for i = 0 to Model.nconstrs m - 1 do
            let c = Model.constr m i and c2 = Model.constr m2 i in
            if c2.Model.c_sense <> c.Model.c_sense then
              QCheck2.Test.fail_reportf "row %d: sense differs" i;
            if not (beq c2.Model.c_rhs c.Model.c_rhs) then
              QCheck2.Test.fail_reportf "row %d: rhs %g <> %g" i c2.Model.c_rhs
                c.Model.c_rhs;
            check_expr (Printf.sprintf "row %d" i) c.Model.c_expr c2.Model.c_expr
          done;
          true)

(* ------------------------------------------------------------------ *)
(* Pqueue / Vec                                                        *)
(* ------------------------------------------------------------------ *)

let prop_pqueue_sorted =
  QCheck2.Test.make ~name:"pqueue: pops in non-decreasing key order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 100) (float_range (-100.) 100.))
    (fun keys ->
      let q = Pqueue.create () in
      List.iteri (fun i k -> Pqueue.push q k i) keys;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (k, _) -> if k < last -. 1e-12 then false else drain k
      in
      Pqueue.length q = List.length keys && drain neg_infinity)

let test_pqueue_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop empty" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek empty" true (Pqueue.peek_key q = None)

let prop_vec_roundtrip =
  QCheck2.Test.make ~name:"vec: add_last/to_array round-trips" ~count:200
    QCheck2.Gen.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.add_last v) xs;
      Array.to_list (Vec.to_array v) = xs && Vec.length v = List.length xs)

let test_vec_bounds () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Vec.set v 1 9;
  Alcotest.(check int) "set/get" 9 (Vec.get v 1);
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Vec.get: index 3 out of range [0, 3)") (fun () -> ignore (Vec.get v 3))

let prop_vec_float_roundtrip =
  QCheck2.Test.make ~name:"vec.float: add_last/to_array round-trips" ~count:200
    QCheck2.Gen.(list (float_range (-1e6) 1e6))
    (fun xs ->
      let v = Vec.Float.create () in
      List.iter (Vec.Float.add_last v) xs;
      let arr = Vec.Float.to_array v in
      Vec.Float.length v = List.length xs
      && Array.to_list arr = xs
      && Vec.Float.fold_left (fun acc x -> acc +. x) 0. v
         = List.fold_left (fun acc x -> acc +. x) 0. xs)

let test_vec_float_clear_and_bounds () =
  let v = Vec.Float.of_array [| 1.5; 2.5; 3.5 |] in
  Vec.Float.set v 1 9.25;
  Alcotest.(check (float 0.)) "set/get" 9.25 (Vec.Float.get v 1);
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Vec.Float.get: index 3 out of range [0, 3)") (fun () ->
      ignore (Vec.Float.get v 3));
  Vec.Float.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.Float.length v);
  (* Capacity survives a clear: appends after it still work. *)
  Vec.Float.add_last v 7.;
  Alcotest.(check (float 0.)) "append after clear" 7. (Vec.Float.get v 0)

(* ------------------------------------------------------------------ *)
(* Node_pool                                                           *)
(* ------------------------------------------------------------------ *)

let test_node_pool_sequential_order () =
  (* A single worker sees its own heap in key order. *)
  let np = Node_pool.create ~nworkers:1 in
  List.iter (fun k -> Node_pool.push np ~worker:0 (float_of_int k) k) [ 5; 1; 4; 2; 3 ];
  let popped = ref [] in
  let rec drain () =
    match Node_pool.pop np ~worker:0 with
    | None -> ()
    | Some (_, v) ->
        popped := v :: !popped;
        Node_pool.task_done np ~worker:0;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "key order" [ 1; 2; 3; 4; 5 ] (List.rev !popped);
  Alcotest.(check bool) "drained" true (Node_pool.drained np)

let test_node_pool_best_bound_covers_inflight () =
  let np = Node_pool.create ~nworkers:1 in
  Node_pool.push np ~worker:0 7. "a";
  Node_pool.push np ~worker:0 9. "b";
  (match Node_pool.pop np ~worker:0 with
  | Some (7., "a") ->
      (* "a" is in flight: the global bound must still report it. *)
      Alcotest.(check (float 0.)) "bound includes in-flight" 7. (Node_pool.best_bound np)
  | _ -> Alcotest.fail "expected key-7 node first");
  Node_pool.task_done np ~worker:0;
  Alcotest.(check (float 0.)) "bound falls to queued" 9. (Node_pool.best_bound np)

let test_node_pool_concurrent_stress () =
  (* 4 domains hammer one pool: every worker seeds nodes, then each pop
     re-pushes two children until a per-item budget runs out.  No node
     may be lost or duplicated: the atomic sum of processed nodes must
     equal the number pushed, and the pool must end drained with every
     domain seeing [pop = None] (the all-idle broadcast reaches all). *)
  let nworkers = 4 in
  let np = Node_pool.create ~nworkers in
  let seeds = 32 in
  let processed = Atomic.make 0 in
  let pushed = Atomic.make 0 in
  for w = 0 to nworkers - 1 do
    for i = 0 to (seeds / nworkers) - 1 do
      Atomic.incr pushed;
      (* depth encoded in the payload: children spawn until depth 3 *)
      Node_pool.push np ~worker:w (float_of_int i) (0, i)
    done
  done;
  let worker w =
    let rec loop () =
      match Node_pool.pop np ~worker:w with
      | None -> ()
      | Some (k, (depth, tag)) ->
          Atomic.incr processed;
          if depth < 3 then begin
            Atomic.incr pushed;
            Node_pool.push np ~worker:w (k +. 1.) (depth + 1, (2 * tag) + 1);
            Atomic.incr pushed;
            Node_pool.push np ~worker:w (k +. 2.) (depth + 1, (2 * tag) + 2)
          end;
          Node_pool.task_done np ~worker:w;
          loop ()
    in
    loop ()
  in
  let domains = Array.init nworkers (fun w -> Domain.spawn (fun () -> worker w)) in
  Array.iter Domain.join domains;
  Alcotest.(check int) "every push processed exactly once" (Atomic.get pushed)
    (Atomic.get processed);
  Alcotest.(check bool) "drained" true (Node_pool.drained np);
  Alcotest.(check int) "nothing left queued" 0 (Node_pool.length np);
  Alcotest.(check bool) "best bound empty" true (Node_pool.best_bound np = infinity)

let test_node_pool_stop_wakes_sleepers () =
  (* A domain blocked on an empty-but-undrained pool must be released by
     [stop] rather than sleeping forever. *)
  let np = Node_pool.create ~nworkers:2 in
  Node_pool.push np ~worker:0 1. ();
  (match Node_pool.pop np ~worker:0 with
  | Some _ -> () (* hold the node in flight so worker 1 has to sleep *)
  | None -> Alcotest.fail "expected a node");
  let sleeper = Domain.spawn (fun () -> Node_pool.pop np ~worker:1) in
  Unix.sleepf 0.05;
  Node_pool.stop np;
  let res = Domain.join sleeper in
  Alcotest.(check bool) "sleeper released with None" true (res = None);
  Alcotest.(check bool) "stopped" true (Node_pool.stopped np)

(* ------------------------------------------------------------------ *)
(* Sparse LU kernel                                                    *)
(* ------------------------------------------------------------------ *)

(* Dense Gauss-Jordan inverse with partial pivoting — the reference the
   sparse kernel is checked against.  Input [a.(row).(pos)]; [None] if a
   pivot falls below 1e-9 (singular to working precision). *)
let dense_inverse a =
  let m = Array.length a in
  let w = Array.map Array.copy a in
  let inv = Array.init m (fun i -> Array.init m (fun j -> if i = j then 1. else 0.)) in
  let ok = ref true in
  (try
     for k = 0 to m - 1 do
       let p = ref k in
       for i = k + 1 to m - 1 do
         if Float.abs w.(i).(k) > Float.abs w.(!p).(k) then p := i
       done;
       if Float.abs w.(!p).(k) < 1e-9 then raise Exit;
       if !p <> k then begin
         let t = w.(k) in
         w.(k) <- w.(!p);
         w.(!p) <- t;
         let t = inv.(k) in
         inv.(k) <- inv.(!p);
         inv.(!p) <- t
       end;
       let piv = w.(k).(k) in
       for j = 0 to m - 1 do
         w.(k).(j) <- w.(k).(j) /. piv;
         inv.(k).(j) <- inv.(k).(j) /. piv
       done;
       for i = 0 to m - 1 do
         if i <> k && w.(i).(k) <> 0. then begin
           let f = w.(i).(k) in
           for j = 0 to m - 1 do
             w.(i).(j) <- w.(i).(j) -. (f *. w.(k).(j));
             inv.(i).(j) <- inv.(i).(j) -. (f *. inv.(k).(j))
           done
         end
       done
     done
   with Exit -> ok := false);
  if !ok then Some inv else None

(* Random well-conditioned sparse basis: a signed permutation diagonal
   (magnitude in [2, 5]) plus at most two off-diagonal entries of
   magnitude <= 0.5 per column — strictly column diagonally dominant
   under the permutation, so factorization must succeed. *)
let random_sparse_basis =
  QCheck2.Gen.(
    let* m = int_range 2 10 in
    let* perm = shuffle_a (Array.init m Fun.id) in
    let* diag =
      array_size (return m)
        (let* mag = float_range 2. 5. in
         let* s = bool in
         return (if s then mag else -.mag))
    in
    let* extras =
      array_size (return m)
        (list_size (int_range 0 2)
           (let* r = int_range 0 (m - 1) in
            let* v = float_range (-0.5) 0.5 in
            return (r, v)))
    in
    let* rhs = array_size (return m) (float_range (-5.) 5.) in
    return (m, perm, diag, extras, rhs))

let basis_cols (m, perm, diag, extras, _) =
  Array.init m (fun j ->
      Array.of_list
        ((perm.(j), diag.(j)) :: List.filter (fun (r, _) -> r <> perm.(j)) extras.(j)))

let dense_of_cols m cols =
  let a = Array.make_matrix m m 0. in
  Array.iteri (fun j col -> Array.iter (fun (r, v) -> a.(r).(j) <- a.(r).(j) +. v) col) cols;
  a

let close_to ?(eps = 1e-9) y z =
  let scale = ref 1. in
  Array.iter (fun v -> scale := Float.max !scale (Float.abs v)) z;
  let ok = ref true in
  Array.iteri (fun i v -> if Float.abs (v -. z.(i)) > eps *. !scale then ok := false) y;
  !ok

let prop_lu_matches_dense_reference =
  QCheck2.Test.make ~name:"lu: ftran/btran agree with the dense inverse to 1e-9" ~count:300
    random_sparse_basis (fun spec ->
      let m, _, _, _, rhs = spec in
      let cols = basis_cols spec in
      let a = dense_of_cols m cols in
      match (Lu.factorize ~m (fun j -> cols.(j)), dense_inverse a) with
      | None, _ | _, None -> false (* dominant: both must succeed *)
      | Some lu, Some ia ->
          let ft = Array.copy rhs in
          Lu.ftran lu ft;
          let ft_ref =
            Array.init m (fun p ->
                let s = ref 0. in
                for r = 0 to m - 1 do
                  s := !s +. (ia.(p).(r) *. rhs.(r))
                done;
                !s)
          in
          let bt = Array.copy rhs in
          Lu.btran lu bt;
          let bt_ref =
            Array.init m (fun r ->
                let s = ref 0. in
                for p = 0 to m - 1 do
                  s := !s +. (ia.(p).(r) *. rhs.(p))
                done;
                !s)
          in
          close_to ft ft_ref && close_to bt bt_ref)

let prop_lu_eta_update_matches_dense =
  QCheck2.Test.make ~name:"lu: eta update tracks a column replacement to 1e-9" ~count:300
    random_sparse_basis (fun spec ->
      let m, _, _, _, rhs = spec in
      let cols = basis_cols spec in
      match Lu.factorize ~m (fun j -> cols.(j)) with
      | None -> false
      | Some lu ->
          (* Replace the column at position r by 2·col_r + ½·col_s: its
             FTRAN image is 2·e_r + ½·e_s, so the pivot is a safe 2. *)
          let r = m / 2 in
          let s = (r + 1) mod m in
          let a_new = Array.make m 0. in
          Array.iter (fun (i, v) -> a_new.(i) <- a_new.(i) +. (2. *. v)) cols.(r);
          Array.iter (fun (i, v) -> a_new.(i) <- a_new.(i) +. (0.5 *. v)) cols.(s);
          let w = Array.copy a_new in
          Lu.ftran lu w;
          if not (Lu.update lu ~r ~w) then false
          else
            let cols' = Array.copy cols in
            cols'.(r) <-
              (Array.to_list (Array.mapi (fun i v -> (i, v)) a_new)
              |> List.filter (fun (_, v) -> v <> 0.)
              |> Array.of_list);
            let a' = dense_of_cols m cols' in
            (match dense_inverse a' with
            | None -> false
            | Some ia ->
                let ft = Array.copy rhs in
                Lu.ftran lu ft;
                let ft_ref =
                  Array.init m (fun p ->
                      let acc = ref 0. in
                      for i = 0 to m - 1 do
                        acc := !acc +. (ia.(p).(i) *. rhs.(i))
                      done;
                      !acc)
                in
                let bt = Array.copy rhs in
                Lu.btran lu bt;
                let bt_ref =
                  Array.init m (fun i ->
                      let acc = ref 0. in
                      for p = 0 to m - 1 do
                        acc := !acc +. (ia.(p).(i) *. rhs.(p))
                      done;
                      !acc)
                in
                close_to ft ft_ref && close_to bt bt_ref))

let test_lu_rejects_singular () =
  (* Exactly singular and near-singular bases must be refused by both
     the sparse kernel and the dense reference. *)
  let zero_col = [| [| (0, 1.); (1, 2.) |]; [||] |] in
  Alcotest.(check bool) "zero column rejected" true
    (Option.is_none (Lu.factorize ~m:2 (fun j -> zero_col.(j))));
  Alcotest.(check bool) "zero column: dense agrees" true
    (Option.is_none (dense_inverse (dense_of_cols 2 zero_col)));
  let dup = [| [| (0, 1.); (1, 2.) |]; [| (0, 1.); (1, 2.) |] |] in
  Alcotest.(check bool) "duplicate columns rejected" true
    (Option.is_none (Lu.factorize ~m:2 (fun j -> dup.(j))));
  Alcotest.(check bool) "duplicate columns: dense agrees" true
    (Option.is_none (dense_inverse (dense_of_cols 2 dup)));
  let near = [| [| (0, 1.); (1, 1.) |]; [| (0, 1.); (1, 1. +. 1e-14) |] |] in
  Alcotest.(check bool) "near-singular rejected" true
    (Option.is_none (Lu.factorize ~m:2 (fun j -> near.(j))));
  Alcotest.(check bool) "near-singular: dense agrees" true
    (Option.is_none (dense_inverse (dense_of_cols 2 near)))

let test_append_rows_bit_identical () =
  (* Cold-solve snapshots carry a freshly refactorized zero-eta factor;
     growing one with Basis.append_rows must extend it in place rather
     than refactorize — so the first m basic values of the grown
     tableau are bit-for-bit those of the original tableau. *)
  let m = Model.create () in
  let x = Model.add_var m ~ub:4. "x"
  and y = Model.add_var m ~ub:4. "y"
  and z = Model.add_var m ~ub:4. "z" in
  Model.add_constr m (Lin.of_list [ (1., x); (2., y); (1., z) ]) Model.Le 9.;
  Model.add_constr m (Lin.of_list [ (3., x); (1., y) ]) Model.Le 11.;
  Model.add_constr m (Lin.of_list [ (1., y); (1., z) ]) Model.Ge 1.;
  Model.set_objective m Model.Maximize (Lin.of_list [ (2., x); (3., y); (1., z) ]);
  let p = Simplex.of_model m in
  let lb = [| 0.; 0.; 0. |] and ub = [| 4.; 4.; 4. |] in
  let r0 = Simplex.solve p ~lb ~ub in
  Alcotest.check lp_status "optimal" Status.Lp_optimal r0.Simplex.status;
  let basis = Option.get r0.Simplex.basis in
  let t0 = Option.get (Simplex.tableau p ~lb ~ub basis) in
  let rows =
    [
      ([| (0, 1.); (1, 1.) |], Model.Le, 50.);
      ([| (1, 1.); (2, 1.) |], Model.Le, 60.);
      ([| (0, 1.); (2, 2.) |], Model.Le, 70.);
    ]
  in
  let p' = Simplex.add_rows p rows in
  let grown = Basis.append_rows basis (Array.of_list (List.map (fun (r, _, _) -> r) rows)) in
  let t1 = Option.get (Simplex.tableau p' ~lb ~ub grown) in
  Alcotest.(check int) "grown row count" (t0.Simplex.t_nrows + 3) t1.Simplex.t_nrows;
  for i = 0 to t0.Simplex.t_nrows - 1 do
    Alcotest.(check int64)
      (Printf.sprintf "basic value %d bit-identical" i)
      (Int64.bits_of_float t0.Simplex.t_xb.(i))
      (Int64.bits_of_float t1.Simplex.t_xb.(i))
  done

let prop_dense_sparse_lp_parity =
  QCheck2.Test.make ~name:"simplex: dense ablation kernel matches sparse LU" ~count:200
    random_lp_spec (fun spec ->
      let m, _ = build_lp spec in
      let p = Simplex.of_model m in
      let lb = Array.make p.Simplex.ncols 0. and ub = Array.make p.Simplex.ncols 10. in
      let s = Simplex.solve p ~lb ~ub in
      let d = Simplex.solve ~dense:true p ~lb ~ub in
      s.Simplex.status = d.Simplex.status
      && (s.Simplex.status <> Status.Lp_optimal
         || feq ~eps:1e-6 s.Simplex.objective d.Simplex.objective))

let prop_dense_sparse_bb_parity =
  QCheck2.Test.make ~name:"branch&bound: dense-basis ablation matches sparse kernel"
    ~count:100 random_bip (fun spec ->
      let m = build_bip spec in
      let s = Branch_bound.solve m in
      let d =
        Branch_bound.solve
          ~options:{ Branch_bound.default_options with Branch_bound.dense_basis = true }
          m
      in
      s.Branch_bound.status = d.Branch_bound.status
      && (s.Branch_bound.status <> Status.Mip_optimal
         || feq ~eps:1e-5 s.Branch_bound.objective d.Branch_bound.objective))

(* ------------------------------------------------------------------ *)
(* Kernel round 2: pricing and ratio-test ablations                    *)
(* ------------------------------------------------------------------ *)

(* Devex and Dantzig pricing walk different vertex sequences but must
   land on the same optimum (or agree the LP is infeasible/unbounded). *)
let prop_pricing_lp_parity =
  QCheck2.Test.make ~name:"simplex: devex pricing matches dantzig on random LPs" ~count:300
    random_lp_spec (fun spec ->
      let m, _ = build_lp spec in
      let p = Simplex.of_model m in
      let n = p.Simplex.ncols in
      let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
      let dv = Simplex.solve ~pricing:Simplex.Devex p ~lb ~ub in
      let dz = Simplex.solve ~pricing:Simplex.Dantzig p ~lb ~ub in
      dv.Simplex.status = dz.Simplex.status
      && (dv.Simplex.status <> Status.Lp_optimal
         || feq ~eps:1e-6 dv.Simplex.objective dz.Simplex.objective))

let prop_ratio_test_lp_parity =
  QCheck2.Test.make ~name:"simplex: harris ratio test matches the classic one" ~count:300
    random_lp_spec (fun spec ->
      let m, _ = build_lp spec in
      let p = Simplex.of_model m in
      let n = p.Simplex.ncols in
      let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
      let h = Simplex.solve ~harris:true p ~lb ~ub in
      let c = Simplex.solve ~harris:false p ~lb ~ub in
      h.Simplex.status = c.Simplex.status
      && (h.Simplex.status <> Status.Lp_optimal
         || feq ~eps:1e-6 h.Simplex.objective c.Simplex.objective))

let prop_pricing_bb_parity =
  QCheck2.Test.make ~name:"branch&bound: dantzig ablation matches devex default" ~count:100
    random_bip (fun spec ->
      let m = build_bip spec in
      let dv = Branch_bound.solve m in
      let dz =
        Branch_bound.solve
          ~options:{ Branch_bound.default_options with Branch_bound.pricing = Simplex.Dantzig }
          m
      in
      dv.Branch_bound.status = dz.Branch_bound.status
      && (dv.Branch_bound.status <> Status.Mip_optimal
         || feq ~eps:1e-6 dv.Branch_bound.objective dz.Branch_bound.objective))

let prop_harris_bb_parity =
  QCheck2.Test.make ~name:"branch&bound: classic ratio-test ablation matches harris default"
    ~count:100 random_bip (fun spec ->
      let m = build_bip spec in
      let h = Branch_bound.solve m in
      let c =
        Branch_bound.solve
          ~options:{ Branch_bound.default_options with Branch_bound.harris = false }
          m
      in
      h.Branch_bound.status = c.Branch_bound.status
      && (h.Branch_bound.status <> Status.Mip_optimal
         || feq ~eps:1e-6 h.Branch_bound.objective c.Branch_bound.objective))

(* Beale's cycling LP: every vertex of the feasible region is degenerate
   at the origin, and Dantzig pricing with a naive ratio test cycles
   forever.  The stall detector must hand over to Bland's rule and
   terminate at the known optimum -0.05 = -1/20 under all four
   pricing/ratio-test combinations. *)
let test_degenerate_stall_bland () =
  let m = Model.create () in
  let x1 = Model.add_var m "x1" and x2 = Model.add_var m "x2" in
  let x3 = Model.add_var m ~ub:1. "x3" and x4 = Model.add_var m "x4" in
  Model.add_constr m
    (Lin.of_list [ (0.25, x1); (-60., x2); (-1. /. 25., x3); (9., x4) ])
    Model.Le 0.;
  Model.add_constr m
    (Lin.of_list [ (0.5, x1); (-90., x2); (-1. /. 50., x3); (3., x4) ])
    Model.Le 0.;
  Model.set_objective m Model.Minimize
    (Lin.of_list [ (-0.75, x1); (150., x2); (-0.02, x3); (6., x4) ]);
  let p = Simplex.of_model m in
  let n = p.Simplex.ncols in
  let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
  List.iter
    (fun (pricing, harris, tag) ->
      let r = Simplex.solve ~pricing ~harris p ~lb ~ub in
      Alcotest.check lp_status (tag ^ " status") Status.Lp_optimal r.Simplex.status;
      check_feq (tag ^ " objective") (-0.05) r.Simplex.objective)
    [
      (Simplex.Devex, true, "devex+harris");
      (Simplex.Devex, false, "devex+classic");
      (Simplex.Dantzig, true, "dantzig+harris");
      (Simplex.Dantzig, false, "dantzig+classic");
    ]

(* Bound-flipping ratio test: tightening the upper bound of a basic
   variable forces a dual repair in which cheaper boxed nonbasics must
   flip to their opposite bound.  The warm re-solve must agree with a
   cold solve of the tightened box, with and without the long-step
   test. *)
let test_bound_flip_boxed_lp () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:1. "x" in
  let y = Model.add_var m ~ub:1. "y" in
  let z = Model.add_var m ~ub:1. "z" in
  let w = Model.add_var m ~ub:1. "w" in
  Model.add_constr m (Lin.of_list [ (1., x); (1., y); (1., z); (1., w) ]) Model.Le 2.;
  Model.set_objective m Model.Minimize
    (Lin.of_list [ (-3., x); (-2., y); (-1., z); (-0.5, w) ]);
  let p = Simplex.of_model m in
  let n = p.Simplex.ncols in
  let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
  List.iter
    (fun harris ->
      let tag = if harris then "bfrt" else "classic" in
      let ub = Array.copy ub in
      let r0 = Simplex.solve ~harris p ~lb ~ub in
      Alcotest.check lp_status (tag ^ " cold status") Status.Lp_optimal r0.Simplex.status;
      check_feq (tag ^ " cold objective") (-5.) r0.Simplex.objective;
      let basis =
        match r0.Simplex.basis with
        | Some b -> b
        | None -> Alcotest.fail "optimal cold solve must expose its basis"
      in
      ub.(x) <- 0.25;
      let r1 = Simplex.solve ~harris ~basis p ~lb ~ub in
      Alcotest.check lp_status (tag ^ " warm status") Status.Lp_optimal r1.Simplex.status;
      check_feq (tag ^ " warm objective") (-3.5) r1.Simplex.objective;
      check_feq (tag ^ " warm x") 0.25 r1.Simplex.primal.(x);
      check_feq (tag ^ " warm y") 1. r1.Simplex.primal.(y);
      check_feq (tag ^ " warm z") 0.75 r1.Simplex.primal.(z);
      let cold = Simplex.solve ~harris p ~lb ~ub in
      check_feq (tag ^ " warm = cold") cold.Simplex.objective r1.Simplex.objective)
    [ true; false ]

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "milp"
    [
      ( "lin",
        [
          Alcotest.test_case "merge and drop zeros" `Quick test_lin_basic;
          Alcotest.test_case "add/scale" `Quick test_lin_add_scale;
          Alcotest.test_case "eval" `Quick test_lin_eval;
          Alcotest.test_case "sub/neg" `Quick test_lin_sub_neg;
          Alcotest.test_case "infix" `Quick test_lin_infix;
          Alcotest.test_case "term order" `Quick test_lin_iter_order;
          qt prop_lin_add_commutative;
          qt prop_lin_eval_linear;
        ] );
      ( "model",
        [
          Alcotest.test_case "variables" `Quick test_model_vars;
          Alcotest.test_case "bad bounds" `Quick test_model_bad_bounds;
          Alcotest.test_case "constant folding" `Quick test_model_constr_folds_constant;
          Alcotest.test_case "check_feasible" `Quick test_model_check_feasible;
          Alcotest.test_case "add_range" `Quick test_model_add_range;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "textbook max" `Quick test_simplex_textbook;
          Alcotest.test_case "equality + >=" `Quick test_simplex_equality_and_ge;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative bounds" `Quick test_simplex_negative_lb;
          Alcotest.test_case "free variable" `Quick test_simplex_free_variable;
          Alcotest.test_case "free unbounded below" `Quick test_simplex_free_unbounded_below;
          Alcotest.test_case "degenerate vertex" `Quick test_simplex_degenerate;
          Alcotest.test_case "fixed variables" `Quick test_simplex_fixed_vars;
          Alcotest.test_case "negative equality rhs" `Quick test_simplex_equality_negative_rhs;
          qt prop_simplex_sound;
        ] );
      ( "warm_start",
        [
          Alcotest.test_case "textbook re-solve" `Quick test_warm_restart_textbook;
          Alcotest.test_case "detects infeasible child" `Quick test_warm_detects_infeasible;
          qt prop_warm_matches_cold;
        ] );
      ( "presolve",
        [
          Alcotest.test_case "singleton row to bound" `Quick test_presolve_singleton_bound;
          Alcotest.test_case "integer rounding" `Quick test_presolve_integer_rounding;
          Alcotest.test_case "detects infeasibility" `Quick test_presolve_detects_infeasible;
          Alcotest.test_case "chain propagation" `Quick test_presolve_chain_propagation;
          Alcotest.test_case "coefficient strengthening" `Quick test_presolve_strengthen_clique;
          Alcotest.test_case "strengthening on >= rows" `Quick test_presolve_strengthen_ge_row;
          qt test_presolve_no_false_positives;
          qt prop_presolve_strengthen_preserves_integer_points;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "fixture: every elimination + postsolve" `Quick
            test_reduce_postsolve_fixture;
          Alcotest.test_case "ge-row strengthening on a wide box" `Quick
            test_strengthen_ge_wide_box;
          Alcotest.test_case "cuts lift/restrict through postsolve" `Quick
            test_cuts_lift_restrict;
          Alcotest.test_case "trace re-apply matches from-scratch" `Quick
            test_reduce_reapply_matches_fresh;
          qt prop_reduce_roundtrip_lp;
          qt prop_reduce_roundtrip_routing_milp;
        ] );
      ( "cuts",
        [
          Alcotest.test_case "cover cut on a knapsack" `Quick test_cover_cut_knapsack;
          Alcotest.test_case "append_row grows a warm basis" `Quick
            test_append_row_grows_basis;
          qt prop_cuts_never_cut_integer_points;
          qt prop_bb_cuts_invariant;
        ] );
      ( "branch_bound",
        [
          Alcotest.test_case "knapsack" `Quick test_bb_knapsack;
          Alcotest.test_case "integer minimization" `Quick test_bb_integer_min;
          Alcotest.test_case "infeasible" `Quick test_bb_infeasible;
          Alcotest.test_case "LP-feasible MIP-infeasible" `Quick test_bb_lp_feasible_mip_infeasible;
          Alcotest.test_case "exactly-one rows" `Quick test_bb_equality_partition;
          Alcotest.test_case "pure bounds" `Quick test_bb_respects_bound;
          Alcotest.test_case "cutoff prunes" `Quick test_bb_cutoff_prunes;
          Alcotest.test_case "cutoff minimize" `Quick test_bb_cutoff_minimize;
          qt prop_bb_matches_brute_force;
          qt prop_bb_solution_is_feasible;
          qt prop_bb_warm_start_invariant;
        ] );
      ( "lp_format",
        [
          Alcotest.test_case "sections and sanitization" `Quick test_lp_format_sections;
          Alcotest.test_case "free variables" `Quick test_lp_format_free_and_inf;
          Alcotest.test_case "reader: simple" `Quick test_lp_reader_simple;
          Alcotest.test_case "reader: features" `Quick test_lp_reader_features;
          Alcotest.test_case "reader: errors" `Quick test_lp_reader_errors;
          qt prop_lp_roundtrip;
          qt prop_lp_structural_roundtrip;
        ] );
      ( "containers",
        [
          qt prop_pqueue_sorted;
          Alcotest.test_case "pqueue empty" `Quick test_pqueue_empty;
          qt prop_vec_roundtrip;
          Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
          qt prop_vec_float_roundtrip;
          Alcotest.test_case "vec.float clear and bounds" `Quick test_vec_float_clear_and_bounds;
        ] );
      ( "lu",
        [
          Alcotest.test_case "singular and near-singular rejects" `Quick
            test_lu_rejects_singular;
          Alcotest.test_case "append_rows keeps basic values bit-identical" `Quick
            test_append_rows_bit_identical;
          qt prop_lu_matches_dense_reference;
          qt prop_lu_eta_update_matches_dense;
          qt prop_dense_sparse_lp_parity;
          qt prop_dense_sparse_bb_parity;
        ] );
      ( "kernel2",
        [
          qt prop_pricing_lp_parity;
          qt prop_ratio_test_lp_parity;
          qt prop_pricing_bb_parity;
          qt prop_harris_bb_parity;
          Alcotest.test_case "beale degeneracy terminates via bland" `Quick
            test_degenerate_stall_bland;
          Alcotest.test_case "bound-flipping dual ratio test" `Quick test_bound_flip_boxed_lp;
        ] );
      ( "node_pool",
        [
          Alcotest.test_case "sequential order" `Quick test_node_pool_sequential_order;
          Alcotest.test_case "best bound covers in-flight" `Quick
            test_node_pool_best_bound_covers_inflight;
          Alcotest.test_case "concurrent stress" `Quick test_node_pool_concurrent_stress;
          Alcotest.test_case "stop wakes sleepers" `Quick test_node_pool_stop_wakes_sleepers;
        ] );
    ]
