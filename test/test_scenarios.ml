(* PR9 surface: the scenario registry, the tactical generator, the
   tabu-search heuristic, the matheuristic bridge into the exact
   solver, the nested solver-config groups and the per-request
   override merge. *)

open Archex
module Tabu = Heuristic.Tabu

let () = Scenario_gen.register_defaults ()

let get = function Ok v -> v | Error e -> Alcotest.fail e

let obj (o : Outcome.t) = o.Outcome.mip.Milp.Branch_bound.objective

(* ---- registry ------------------------------------------------------- *)

let test_registry_catalogue () =
  let names = Scenario.names () in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [
      "dc-dollar";
      "dc-energy";
      "dc-mixed";
      "dc-small-dollar";
      "dc-small-energy";
      "dc-small-mixed";
      "tac-smoke";
      "tac-mf2";
      "tac-mf2-jam";
      "tac-mf2-atten";
      "tac-mf2-corridor";
      "tac-city4";
    ];
  let sc = get (Scenario.find "dc-small-energy") in
  Alcotest.(check string) "name" "dc-small-energy" (Scenario.name sc);
  Alcotest.(check string) "scale" "test" (Scenario.scale_name (Scenario.scale sc));
  Alcotest.(check string) "tactical scale" "tactical"
    (Scenario.scale_name (Scenario.scale (get (Scenario.find "tac-mf2"))));
  match Scenario.find "no-such-scenario" with
  | Ok _ -> Alcotest.fail "find accepted an unknown name"
  | Error e ->
      Alcotest.(check bool) "error lists the known names" true
        (Astring.String.is_infix ~affix:"dc-small-energy" e)

let test_register_defaults_idempotent () =
  let before = List.length (Scenario.names ()) in
  Scenario_gen.register_defaults ();
  Scenario_gen.register_defaults ();
  Alcotest.(check int) "no duplicate registrations" before
    (List.length (Scenario.names ()))

let test_register_rejects () =
  let entry name =
    {
      Scenario.sc_name = name;
      sc_descr = "throwaway";
      sc_scale = Scenario.Test;
      sc_expected = None;
      sc_build = (fun () -> Error "unbuildable");
    }
  in
  Scenario.register (entry "test-dup-entry");
  (try
     Scenario.register (entry "test-dup-entry");
     Alcotest.fail "duplicate name accepted"
   with Invalid_argument _ -> ());
  try
    Scenario.register (entry "");
    Alcotest.fail "empty name accepted"
  with Invalid_argument _ -> ()

(* ---- generator ------------------------------------------------------ *)

let spec_of name =
  match List.find_opt (fun (n, _, _, _) -> n = name) Scenario_gen.defaults with
  | Some (_, _, _, spec) -> spec
  | None -> Alcotest.fail ("no default spec named " ^ name)

let sizes inst =
  ( Template.nnodes inst.Instance.template,
    Netgraph.Digraph.nedges inst.Instance.graph )

let test_generator_deterministic () =
  List.iter
    (fun name ->
      let spec = spec_of name in
      let a = get (Scenario_gen.build spec)
      and b = get (Scenario_gen.build spec) in
      Alcotest.(check (pair int int)) (name ^ " sizes") (sizes a) (sizes b);
      let ea = get (Solve.encode_size a (Solve.approx ~kstar:1 ()))
      and eb = get (Solve.encode_size b (Solve.approx ~kstar:1 ())) in
      Alcotest.(check (pair int int)) (name ^ " encoding") ea eb)
    [ "tac-smoke"; "tac-mf2" ]

let test_variants_tighten () =
  (* Each tactical variant is expressed as extra channel attenuation,
     so it must keep the candidate node set and strictly shrink the
     feasible candidate-link set. *)
  let bn, be = sizes (get (Scenario_gen.build (spec_of "tac-mf2"))) in
  List.iter
    (fun name ->
      let vn, ve = sizes (get (Scenario_gen.build (spec_of name))) in
      Alcotest.(check int) (name ^ " same nodes") bn vn;
      Alcotest.(check bool)
        (Printf.sprintf "%s fewer candidate links (%d < %d)" name ve be)
        true (ve < be))
    [ "tac-mf2-jam"; "tac-mf2-atten"; "tac-mf2-corridor" ]

let test_generator_valid () =
  (* Every family keeps a feasible candidate-path structure at K* = 1,
     including under the tightened variants. *)
  List.iter
    (fun name ->
      let inst = get (Scenario.instance (get (Scenario.find name))) in
      match Solve.encode_size inst (Solve.approx ~kstar:1 ()) with
      | Ok (nvars, nconstrs) ->
          Alcotest.(check bool) (name ^ " nonempty encoding") true
            (nvars > 0 && nconstrs > 0)
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    [ "tac-smoke"; "tac-mf2-jam"; "tac-city2-corridor" ]

(* ---- tabu search ---------------------------------------------------- *)

(* 4 nodes: 0 = source (fixed), 1-2 relay candidates, 3 = sink (fixed,
   budget-exempt).  The direct 0->3 link misses the RSS floor even with
   the strongest devices, so any feasible solution must relay. *)
let mk_problem ?(replicas = [| 1 |]) ?(rss_floor_dbm = -90.)
    ?(charge_base = [| 0.; 0. |]) ?(charge_budget = infinity) () =
  let pl = Array.make_matrix 4 4 200. in
  let set u v x =
    pl.(u).(v) <- x;
    pl.(v).(u) <- x
  in
  set 0 3 120.;
  set 0 1 60.;
  set 1 3 60.;
  set 0 2 50.;
  set 2 3 50.;
  set 1 2 55.;
  {
    Tabu.nnodes = 4;
    fixed = [| true; false; false; true |];
    pools = [| [| [| 0; 3 |]; [| 0; 1; 3 |]; [| 0; 2; 3 |]; [| 0; 1; 2; 3 |] |] |];
    replicas;
    ndevices = Array.make 4 2;
    pl;
    txg = Array.init 4 (fun _ -> [| 10.; 20. |]);
    rxg = Array.init 4 (fun _ -> [| 0.; 5. |]);
    rss_floor_dbm;
    node_cost = Array.init 4 (fun _ -> [| 10.; 30. |]);
    tx_cost = Array.init 4 (fun _ -> [| 1.; 1. |]);
    rx_cost = Array.init 4 (fun _ -> [| 1.; 1. |]);
    charge_base = Array.init 4 (fun _ -> Array.copy charge_base);
    charge_tx = Array.init 4 (fun _ -> [| 0.; 0. |]);
    charge_rx = Array.init 4 (fun _ -> [| 0.; 0. |]);
    charge_budget;
    budget_exempt = [| false; false; false; true |];
  }

let tabu_params = { Tabu.default_params with Tabu.tp_iters = 3000; tp_seed = 1 }

let expect_err what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.fail (what ^ ": accepted")

let test_tabu_finds_relay_route () =
  let p = mk_problem () in
  let r = get (Tabu.solve tabu_params p) in
  match r.Tabu.r_best with
  | None -> Alcotest.fail "no feasible solution found"
  | Some sol ->
      (* 3 open nodes at 10 each + 2 tx uses + 2 rx uses. *)
      Alcotest.(check (float 1e-9)) "objective" 34. r.Tabu.r_obj;
      Alcotest.(check (float 1e-9)) "check agrees" r.Tabu.r_obj
        (get (Tabu.check p sol));
      let c = sol.Tabu.sol_choice.(0).(0) in
      Alcotest.(check bool) "routes through one relay" true (c = 1 || c = 2)

let test_tabu_disjoint_replicas () =
  let p = mk_problem ~replicas:[| 2 |] () in
  let r = get (Tabu.solve tabu_params p) in
  match r.Tabu.r_best with
  | None -> Alcotest.fail "no feasible solution found"
  | Some sol ->
      (* The direct path misses the floor and candidate 3 shares edges
         with both relay paths, so the only feasible pair is {1, 2}:
         4 open nodes + 4 tx uses + 4 rx uses. *)
      Alcotest.(check (float 1e-9)) "objective" 48. r.Tabu.r_obj;
      Alcotest.(check (float 1e-9)) "check agrees" r.Tabu.r_obj
        (get (Tabu.check p sol));
      Alcotest.(check bool) "selects both edge-disjoint relays" true
        (sol.Tabu.sol_choice.(0) = [| 1; 2 |])

let test_tabu_lifetime_forces_upgrade () =
  (* The cheap device blows the charge budget (100 > 50); the budget
     only admits the expensive one (10 <= 50).  The sink is exempt and
     keeps the cheap device. *)
  let p = mk_problem ~charge_base:[| 100.; 10. |] ~charge_budget:50. () in
  let r = get (Tabu.solve tabu_params p) in
  match r.Tabu.r_best with
  | None -> Alcotest.fail "no feasible solution found"
  | Some sol ->
      Alcotest.(check (float 1e-9)) "objective" 74. r.Tabu.r_obj;
      Alcotest.(check (float 1e-9)) "check agrees" r.Tabu.r_obj
        (get (Tabu.check p sol));
      let relay = sol.Tabu.sol_choice.(0).(0) in
      Alcotest.(check int) "source upgraded" 1 sol.Tabu.sol_device.(0);
      Alcotest.(check int) "relay upgraded" 1 sol.Tabu.sol_device.(relay);
      Alcotest.(check int) "exempt sink stays cheap" 0 sol.Tabu.sol_device.(3)

let test_tabu_deterministic_and_monotone () =
  let p = mk_problem ~replicas:[| 2 |] () in
  let a = get (Tabu.solve tabu_params p)
  and b = get (Tabu.solve tabu_params p) in
  Alcotest.(check bool) "same incumbent trace" true
    (a.Tabu.r_improvements = b.Tabu.r_improvements);
  Alcotest.(check int) "same iterations" a.Tabu.r_iters b.Tabu.r_iters;
  Alcotest.(check bool) "same best solution" true (a.Tabu.r_best = b.Tabu.r_best);
  Alcotest.(check bool) "improvements nonempty" true (a.Tabu.r_improvements <> []);
  let rec strictly_decreasing = function
    | (_, x) :: ((_, y) :: _ as rest) -> x > y && strictly_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "objectives strictly decreasing" true
    (strictly_decreasing a.Tabu.r_improvements);
  let _, last = List.nth a.Tabu.r_improvements (List.length a.Tabu.r_improvements - 1) in
  Alcotest.(check (float 1e-12)) "trace ends at the incumbent" a.Tabu.r_obj last

let test_tabu_infeasible () =
  (* A floor of 0 dBm is unreachable on every link: the search must
     report honestly rather than return a violated incumbent. *)
  let p = mk_problem ~rss_floor_dbm:0. () in
  let r = get (Tabu.solve tabu_params p) in
  Alcotest.(check bool) "no incumbent" true (r.Tabu.r_best = None);
  Alcotest.(check bool) "objective is infinity" true (r.Tabu.r_obj = infinity);
  Alcotest.(check bool) "first-feasible time is nan" true
    (Float.is_nan r.Tabu.r_first_feasible_s);
  Alcotest.(check bool) "empty trace" true (r.Tabu.r_improvements = [])

let test_tabu_check_rejects () =
  let p = mk_problem ~replicas:[| 2 |] () in
  let sol choice device = { Tabu.sol_choice = choice; sol_device = device } in
  let dev0 = Array.make 4 0 in
  expect_err "wrong slot count" (Tabu.check p (sol [| [| 1 |] |] dev0));
  expect_err "not strictly ascending" (Tabu.check p (sol [| [| 2; 1 |] |] dev0));
  expect_err "repeated candidate" (Tabu.check p (sol [| [| 1; 1 |] |] dev0));
  expect_err "candidate out of range" (Tabu.check p (sol [| [| 1; 9 |] |] dev0));
  expect_err "device out of range"
    (Tabu.check p (sol [| [| 1; 2 |] |] [| 0; 0; 0; 5 |]));
  (* Candidates 1 and 3 share the 0->1 edge. *)
  expect_err "disjointness" (Tabu.check p (sol [| [| 1; 3 |] |] dev0));
  (* Link quality: the direct path misses the floor with any device. *)
  expect_err "link-quality floor"
    (Tabu.check (mk_problem ()) (sol [| [| 0 |] |] dev0));
  (* Lifetime: cheap device over budget on the open source. *)
  expect_err "lifetime budget"
    (Tabu.check
       (mk_problem ~charge_base:[| 100.; 10. |] ~charge_budget:50. ())
       (sol [| [| 1 |] |] dev0));
  Alcotest.(check bool) "well-formed solution accepted" true
    (Tabu.check p (sol [| [| 1; 2 |] |] dev0) = Ok 48.)

let test_tabu_validate () =
  let p = mk_problem ~replicas:[| 9 |] () in
  expect_err "pool smaller than replicas" (Tabu.solve tabu_params p);
  expect_err "check sees it too"
    (Tabu.check p { Tabu.sol_choice = [| [| 0 |] |]; sol_device = Array.make 4 0 })

(* ---- matheuristic through the driver stack -------------------------- *)

let test_matheuristic_objective_parity () =
  let inst = get (Scenario.instance (get (Scenario.find "tac-smoke"))) in
  let base =
    Solver_config.(
      default |> with_approx ~kstar:3 () |> with_time_limit 60.
      |> with_rel_gap 1e-6)
  in
  let off = get (Solve.run base inst) in
  let first_incumbent = ref None in
  let on =
    get
      (Solve.run
         Solver_config.(
           base
           |> with_heuristic (tabu ~iters:8000 ~time_s:1. ())
           |> with_on_incumbent (fun o _ ->
                  if !first_incumbent = None then first_incumbent := Some o))
         inst)
  in
  Alcotest.(check (float 1e-6)) "objective parity" (obj off) (obj on);
  Alcotest.(check bool) "heuristic time recorded" true
    (on.Outcome.stats.Outcome.heuristic_time_s > 0.);
  Alcotest.(check bool) "off run spends nothing in the heuristic" true
    (off.Outcome.stats.Outcome.heuristic_time_s = 0.);
  match !first_incumbent with
  | None -> Alcotest.fail "heuristic streamed no incumbent"
  | Some o ->
      Alcotest.(check bool) "tabu incumbent never beats the proven optimum" true
        (o >= obj off -. 1e-6)

let test_table1_registry_bitcompat () =
  (* The registry must hand back bit-for-bit the instance the Table-1
     builders produce, and an explicit [--heuristic off] config must
     leave the pinned sequential tree untouched (same constant as
     test_archex's presolve regression). *)
  let via_registry = get (Scenario.instance (get (Scenario.find "dc-small-energy"))) in
  let direct =
    get
      (Scenarios.data_collection ~objective:Objective.energy
         Scenario.test_data_collection_params)
  in
  let cfg =
    Solver_config.(
      default |> with_approx ~kstar:4 () |> with_time_limit 60.
      |> with_rel_gap 1e-6 |> with_workers 1
      |> with_heuristic no_heuristic)
  in
  let a = (get (Solve.run cfg via_registry)).Outcome.mip
  and b = (get (Solve.run cfg direct)).Outcome.mip in
  Alcotest.(check int) "registry run hits the pinned tree" 575
    a.Milp.Branch_bound.nodes;
  Alcotest.(check int) "direct build explores the same tree"
    a.Milp.Branch_bound.nodes b.Milp.Branch_bound.nodes;
  Alcotest.(check bool) "objective bit-identical" true
    (a.Milp.Branch_bound.objective = b.Milp.Branch_bound.objective)

(* ---- session reconfigure -------------------------------------------- *)

let test_reconfigure_presolve_toggle () =
  (* Toggling the presolve group per-request on a warm session must
     invalidate the cached template reduction trace: parity against a
     control session that never toggles, across grows on both sides of
     the toggle. *)
  let inst = get (Scenario.instance (get (Scenario.find "dc-small-dollar"))) in
  let cfg =
    Solver_config.(
      default |> with_approx ~kstar:2 () |> with_time_limit 60.
      |> with_rel_gap 1e-6)
  in
  let s = get (Session.create cfg inst) in
  let control = get (Session.create cfg inst) in
  let o1 = Session.solve s and c1 = Session.solve control in
  Alcotest.(check (float 1e-6)) "warm-up parity" (obj c1) (obj o1);
  Session.reconfigure s
    Solver_config.(
      override
        { no_override with o_presolve = Some { cfg.presolve with ps_enabled = false } }
        cfg);
  get (Session.grow s ~kstar:3);
  get (Session.grow control ~kstar:3);
  let o2 = Session.solve s and c2 = Session.solve control in
  Alcotest.(check (float 1e-6)) "presolve-off parity" (obj c2) (obj o2);
  Alcotest.(check int) "override really disabled the reduction stack" 0
    o2.Outcome.mip.Milp.Branch_bound.presolve_rows_removed;
  Session.reconfigure s cfg;
  get (Session.grow s ~kstar:4);
  get (Session.grow control ~kstar:4);
  let o3 = Session.solve s and c3 = Session.solve control in
  Alcotest.(check (float 1e-6)) "presolve-back-on parity" (obj c3) (obj o3);
  try
    Session.reconfigure s Solver_config.(cfg |> with_incremental false);
    Alcotest.fail "incremental flip accepted"
  with Invalid_argument _ -> ()

(* ---- solver-config groups and overrides ----------------------------- *)

let test_config_groups_flat_equiv () =
  let open Solver_config in
  (* [compare], not [=]: options.cutoff defaults to nan, and
     [nan = nan] is false under structural equality. *)
  let same a b = compare a b = 0 in
  Alcotest.(check bool) "warm-start flat = kernel group" true
    (same
       (default |> with_warm_start false)
       (default |> with_kernel { default.kernel with k_warm_start = false }));
  Alcotest.(check bool) "dense-basis flat = kernel group" true
    (same
       (default |> with_dense_basis true)
       (default |> with_kernel { default.kernel with k_dense_basis = true }));
  Alcotest.(check bool) "presolve flat = presolve group" true
    (same
       (default |> with_presolve false)
       (default |> with_presolving { default.presolve with ps_enabled = false }));
  Alcotest.(check bool) "workers flat = parallel group" true
    (same
       (default |> with_workers 3)
       (default |> with_parallelism { default.parallel with par_workers = 3 }));
  let o = bb_options (default |> with_kernel { default.kernel with k_dense_basis = true }) in
  Alcotest.(check bool) "kernel group reaches bb_options" true
    o.Milp.Branch_bound.dense_basis;
  let o = bb_options (default |> with_presolve false) in
  Alcotest.(check bool) "presolve group reaches bb_options" true
    (not o.Milp.Branch_bound.presolve)

let test_config_override_merge () =
  let open Solver_config in
  let cfg = default |> with_approx ~kstar:5 () |> with_time_limit 12. in
  Alcotest.(check bool) "no_override is the identity" true
    (compare (override no_override cfg) cfg = 0);
  let c =
    override
      {
        no_override with
        o_time_limit = Some 3.;
        o_workers = Some 2;
        o_heuristic = Some (tabu ~time_s:0.5 ());
      }
      cfg
  in
  Alcotest.(check bool) "time limit applied" true
    ((bb_options c).Milp.Branch_bound.time_limit = 3.);
  Alcotest.(check int) "workers applied" 2 c.parallel.par_workers;
  Alcotest.(check bool) "heuristic group applied" true
    (c.heuristic.h_mode = H_tabu && c.heuristic.h_time_s = 0.5);
  Alcotest.(check bool) "strategy untouched" true (kstar c = Some 5);
  Alcotest.(check bool) "presolve group untouched" true (same_presolve cfg c);
  let c2 =
    override
      { no_override with o_presolve = Some { cfg.presolve with ps_enabled = false } }
      cfg
  in
  Alcotest.(check bool) "presolve override breaks same_presolve" true
    (not (same_presolve cfg c2));
  Alcotest.(check bool) "presolve override reaches bb_options" true
    (not (bb_options c2).Milp.Branch_bound.presolve)

let test_heuristic_mode_names () =
  let open Solver_config in
  Alcotest.(check string) "tabu" "tabu" (heuristic_mode_name H_tabu);
  Alcotest.(check string) "off" "off" (heuristic_mode_name H_off);
  (match heuristic_mode_of_string "tabu" with
  | Ok H_tabu -> ()
  | _ -> Alcotest.fail "tabu spelling");
  (match heuristic_mode_of_string "off" with
  | Ok H_off -> ()
  | _ -> Alcotest.fail "off spelling");
  match heuristic_mode_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus spelling accepted"

let () =
  Alcotest.run "scenarios"
    [
      ( "registry",
        [
          Alcotest.test_case "seed + generated catalogue" `Quick test_registry_catalogue;
          Alcotest.test_case "register_defaults idempotent" `Quick
            test_register_defaults_idempotent;
          Alcotest.test_case "duplicate and empty names rejected" `Quick
            test_register_rejects;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic builds" `Quick test_generator_deterministic;
          Alcotest.test_case "variants strictly tighten" `Quick test_variants_tighten;
          Alcotest.test_case "feasible path structure" `Quick test_generator_valid;
        ] );
      ( "tabu",
        [
          Alcotest.test_case "finds the relay route" `Quick test_tabu_finds_relay_route;
          Alcotest.test_case "disjoint replicas" `Quick test_tabu_disjoint_replicas;
          Alcotest.test_case "lifetime forces device upgrade" `Quick
            test_tabu_lifetime_forces_upgrade;
          Alcotest.test_case "deterministic, strictly improving" `Quick
            test_tabu_deterministic_and_monotone;
          Alcotest.test_case "honest on infeasible problems" `Quick test_tabu_infeasible;
          Alcotest.test_case "check rejects malformed solutions" `Quick
            test_tabu_check_rejects;
          Alcotest.test_case "problem validation" `Quick test_tabu_validate;
        ] );
      ( "matheuristic",
        [
          Alcotest.test_case "objective parity on tac-smoke" `Slow
            test_matheuristic_objective_parity;
          Alcotest.test_case "Table-1 registry bit-compat, heuristic off" `Slow
            test_table1_registry_bitcompat;
        ] );
      ( "session",
        [
          Alcotest.test_case "per-request presolve toggle" `Slow
            test_reconfigure_presolve_toggle;
        ] );
      ( "config",
        [
          Alcotest.test_case "groups = flat setters" `Quick test_config_groups_flat_equiv;
          Alcotest.test_case "override merge" `Quick test_config_override_merge;
          Alcotest.test_case "heuristic mode spellings" `Quick test_heuristic_mode_names;
        ] );
    ]
