(* Tests for the archexd serving stack (lib/server) and the shared
   cross-solve domain scheduler (Milp.Scheduler) it is built on.

   The daemon tests exercise the real thing: a listening Unix-domain
   socket, handler threads, the admission gate, the warm session cache
   and the drain path — in-process, so a leaked domain or handler shows
   up as [Daemon.run] never returning. *)

open Milp

let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Protocol framing                                                    *)
(* ------------------------------------------------------------------ *)

(* No nan: frames round-trip nan's bit pattern fine, but [nan <> nan]
   would fail the structural comparison below. *)
let gen_wire_float =
  QCheck2.Gen.(
    oneof
      [
        float_range (-1e6) 1e6;
        oneofl [ infinity; neg_infinity; 0.; -0.; 1e308; 5e-324; 1.5 ];
      ])

let gen_wire_string = QCheck2.Gen.(string_size (int_range 0 40))

let gen_overrides =
  QCheck2.Gen.(
    let* o_time_limit = option gen_wire_float in
    let* o_rel_gap = option gen_wire_float in
    let* o_workers = option (int_range 0 64) in
    let* o_seed = option (int_range 0 1_000_000) in
    let* o_deadline_s = option gen_wire_float in
    let* o_presolve = option bool in
    let* o_heuristic = option (oneofl [ "tabu"; "off"; "" ]) in
    let* o_cuts = option (oneofl [ "all"; "none"; "gmi,cover"; "power,clique,negcycle" ]) in
    let* o_cut_max_applied = option (int_range 1 256) in
    let* o_cut_max_age = option (int_range 1 50) in
    let* o_cut_pool_size = option (int_range 1 2000) in
    let* o_cut_min_violation = option gen_wire_float in
    let* o_stream = bool in
    return
      {
        Server.Protocol.o_time_limit;
        o_rel_gap;
        o_workers;
        o_seed;
        o_deadline_s;
        o_presolve;
        o_heuristic;
        o_cuts;
        o_cut_max_applied;
        o_cut_max_age;
        o_cut_pool_size;
        o_cut_min_violation;
        o_stream;
      })

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        return Server.Protocol.Ping;
        return Server.Protocol.Shutdown;
        (let* payload =
           oneof
             [
               map (fun s -> Server.Protocol.Lp s) gen_wire_string;
               (let* name = gen_wire_string in
                let* kstar = int_range 0 12 in
                return (Server.Protocol.Workload { name; kstar }));
             ]
         in
         let* overrides = gen_overrides in
         return (Server.Protocol.Solve { payload; overrides }));
      ])

let gen_response =
  QCheck2.Gen.(
    oneof
      [
        (let* version = gen_wire_string in
         let* workers = int_range 0 256 in
         let* sessions = int_range 0 64 in
         return (Server.Protocol.Pong { version; workers; sessions }));
        (let* r_status = gen_wire_string in
         let* r_objective = gen_wire_float in
         let* r_bound = gen_wire_float in
         let* r_nodes = int_range 0 1_000_000 in
         let* r_lp_iterations = int_range 0 10_000_000 in
         let* r_solve_time_s = gen_wire_float in
         let* r_workers = int_range 0 64 in
         let* r_cache_hit = bool in
         return
           (Server.Protocol.Result
              {
                Server.Protocol.r_status;
                r_objective;
                r_bound;
                r_nodes;
                r_lp_iterations;
                r_solve_time_s;
                r_workers;
                r_cache_hit;
              }));
        (let* u_objective = gen_wire_float in
         let* u_bound = gen_wire_float in
         let* u_elapsed_s = gen_wire_float in
         return (Server.Protocol.Update { u_objective; u_bound; u_elapsed_s }));
        (let* i_objective = gen_wire_float in
         let* i_bound = gen_wire_float in
         let* i_has_incumbent = bool in
         return
           (Server.Protocol.Interrupted { i_objective; i_bound; i_has_incumbent }));
        map (fun s -> Server.Protocol.Rejected s) gen_wire_string;
        map (fun s -> Server.Protocol.Error_msg s) gen_wire_string;
      ])

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"protocol: request encode/decode round-trips" ~count:300
    gen_request (fun r ->
      Server.Protocol.decode_request (Server.Protocol.encode_request r) = Ok r)

let prop_response_roundtrip =
  QCheck2.Test.make ~name:"protocol: response encode/decode round-trips" ~count:300
    gen_response (fun r ->
      Server.Protocol.decode_response (Server.Protocol.encode_response r) = Ok r)

let prop_truncated_rejected =
  (* Every strict prefix of a frame must fail to decode, and so must a
     frame with trailing garbage — the framing layer's length prefix is
     the only thing allowed to delimit a payload. *)
  QCheck2.Test.make ~name:"protocol: truncated and padded frames are rejected"
    ~count:100 gen_request (fun r ->
      let b = Server.Protocol.encode_request r in
      let ok = ref true in
      for i = 0 to Bytes.length b - 1 do
        match Server.Protocol.decode_request (Bytes.sub b 0 i) with
        | Ok _ -> ok := false
        | Error _ -> ()
      done;
      (match
         Server.Protocol.decode_request (Bytes.cat b (Bytes.of_string "pad"))
       with
      | Ok _ -> ok := false
      | Error _ -> ());
      !ok)

let test_protocol_unknown_tag () =
  (match Server.Protocol.decode_request (Bytes.of_string "\x7f") with
  | Ok _ -> Alcotest.fail "unknown request tag accepted"
  | Error _ -> ());
  match Server.Protocol.decode_response (Bytes.of_string "\x7f") with
  | Ok _ -> Alcotest.fail "unknown response tag accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

(* Spin until [cond] holds; threads park in the waiting room
   asynchronously, so tests observe it through the counters. *)
let eventually ?(timeout = 10.) cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if cond () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.yield ();
      go ()
    end
  in
  go ()

let test_admission_gate () =
  let a = Server.Admission.create ~max_active:2 ~max_waiting:0 in
  let go () =
    match Server.Admission.try_acquire a with
    | `Go -> ()
    | _ -> Alcotest.fail "expected `Go"
  in
  go ();
  go ();
  (match Server.Admission.try_acquire a with
  | `Busy -> ()
  | _ -> Alcotest.fail "lane and waiting room full: expected `Busy");
  Server.Admission.release a;
  go ();
  Server.Admission.release a;
  Server.Admission.release a;
  Server.Admission.close a;
  match Server.Admission.try_acquire a with
  | `Closed -> ()
  | _ -> Alcotest.fail "after close: expected `Closed"

let test_admission_waiting_room () =
  let a = Server.Admission.create ~max_active:1 ~max_waiting:1 in
  (match Server.Admission.try_acquire a with
  | `Go -> ()
  | _ -> Alcotest.fail "first acquire");
  let outcome = Atomic.make 0 in
  let t =
    Thread.create
      (fun () ->
        match Server.Admission.try_acquire a with
        | `Go ->
            Server.Admission.release a;
            Atomic.set outcome 1
        | `Busy -> Atomic.set outcome 2
        | `Closed -> Atomic.set outcome 3)
      ()
  in
  Alcotest.(check bool)
    "second caller parks in the waiting room" true
    (eventually (fun () -> Server.Admission.waiting a = 1));
  (match Server.Admission.try_acquire a with
  | `Busy -> ()
  | _ -> Alcotest.fail "room full: expected `Busy");
  Server.Admission.release a;
  Thread.join t;
  Alcotest.(check int) "waiter was admitted" 1 (Atomic.get outcome)

let test_admission_close_flushes_waiters () =
  let a = Server.Admission.create ~max_active:1 ~max_waiting:2 in
  (match Server.Admission.try_acquire a with
  | `Go -> ()
  | _ -> Alcotest.fail "first acquire");
  let outcome = Atomic.make 0 in
  let t =
    Thread.create
      (fun () ->
        match Server.Admission.try_acquire a with
        | `Closed -> Atomic.set outcome 3
        | `Go -> Atomic.set outcome 1
        | `Busy -> Atomic.set outcome 2)
      ()
  in
  Alcotest.(check bool)
    "waiter parked" true
    (eventually (fun () -> Server.Admission.waiting a = 1));
  Server.Admission.close a;
  Thread.join t;
  Alcotest.(check int) "waiter flushed with `Closed" 3 (Atomic.get outcome)

(* ------------------------------------------------------------------ *)
(* Session cache                                                       *)
(* ------------------------------------------------------------------ *)

let test_cache_lru_eviction () =
  let c = Server.Session_cache.create ~capacity:2 in
  let get k =
    let v, hit = Server.Session_cache.checkout c k ~create:(fun () -> ref k) in
    Server.Session_cache.checkin c k v;
    hit
  in
  Alcotest.(check bool) "a: cold" false (get "a");
  Alcotest.(check bool) "b: cold" false (get "b");
  Alcotest.(check bool) "a: warm" true (get "a");
  (* a is now most-recently used, so inserting c evicts b. *)
  Alcotest.(check bool) "c: cold" false (get "c");
  Alcotest.(check bool) "a: survived eviction" true (get "a");
  Alcotest.(check bool) "b: was the stalest, evicted" false (get "b");
  Alcotest.(check int) "capacity respected" 2 (Server.Session_cache.length c);
  let hits, misses = Server.Session_cache.stats c in
  Alcotest.(check int) "hits" 2 hits;
  Alcotest.(check int) "misses" 4 misses

let test_cache_capacity_zero_bypasses () =
  let c = Server.Session_cache.create ~capacity:0 in
  let builds = ref 0 in
  let get k =
    let v, hit =
      Server.Session_cache.checkout c k ~create:(fun () ->
          incr builds;
          ref k)
    in
    Server.Session_cache.checkin c k v;
    hit
  in
  Alcotest.(check bool) "first: cold" false (get "a");
  Alcotest.(check bool) "repeat: still cold" false (get "a");
  Alcotest.(check int) "built fresh both times" 2 !builds;
  Alcotest.(check int) "nothing retained" 0 (Server.Session_cache.length c)

let test_cache_exclusive_checkout () =
  (* A checked-out value is pinned to one holder: the second thread's
     checkout of the same key must wait for checkin, at which point it
     sees the holder's mutation on the same (cached, warm) value. *)
  let c = Server.Session_cache.create ~capacity:1 in
  let v, hit = Server.Session_cache.checkout c "k" ~create:(fun () -> ref 0) in
  Alcotest.(check bool) "first checkout builds" false hit;
  let seen = Atomic.make (-1) in
  let warm = Atomic.make false in
  let t =
    Thread.create
      (fun () ->
        let v2, hit2 =
          Server.Session_cache.checkout c "k" ~create:(fun () -> ref 99)
        in
        Atomic.set seen !v2;
        Atomic.set warm hit2;
        Server.Session_cache.checkin c "k" v2)
      ()
  in
  Thread.delay 0.05;
  v := 1;
  Server.Session_cache.checkin c "k" v;
  Thread.join t;
  Alcotest.(check int) "second holder saw the mutation" 1 (Atomic.get seen);
  Alcotest.(check bool) "second checkout was warm" true (Atomic.get warm)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let with_pool nworkers f =
  let s = Scheduler.create ~nworkers in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown s) (fun () -> f s)

let test_sched_basic () =
  with_pool 2 (fun s ->
      let h = Scheduler.submit s in
      let sum = Atomic.make 0 in
      Scheduler.push h ~worker:0 0. (fun slot ->
          for i = 1 to 3 do
            Scheduler.push h ~worker:slot (float_of_int i) (fun _ ->
                ignore (Atomic.fetch_and_add sum i))
          done);
      Scheduler.await h;
      Alcotest.(check bool) "drained" true (Scheduler.drained h);
      Alcotest.(check int) "all children ran" 6 (Atomic.get sum))

let test_sched_two_solves_isolated () =
  (* Two solves on one pool: each drains independently and neither
     sees the other's tasks. *)
  with_pool 2 (fun s ->
      let run_solve n =
        let h = Scheduler.submit s in
        let sum = Atomic.make 0 in
        for i = 1 to n do
          Scheduler.push h ~worker:i (float_of_int i) (fun _ ->
              ignore (Atomic.fetch_and_add sum i))
        done;
        Scheduler.await h;
        Atomic.get sum
      in
      let r1 = ref 0 and r2 = ref 0 in
      let t1 = Thread.create (fun () -> r1 := run_solve 20) () in
      let t2 = Thread.create (fun () -> r2 := run_solve 30) () in
      Thread.join t1;
      Thread.join t2;
      Alcotest.(check int) "solve 1 total" 210 !r1;
      Alcotest.(check int) "solve 2 total" 465 !r2)

(* Park the single worker inside a task of [h] until the returned
   release function is called, so the test can stage queue contents
   deterministically while no claiming is possible. *)
let gate_worker h =
  let m = Mutex.create () and c = Condition.create () in
  let opened = ref false in
  Scheduler.push h ~worker:0 (-1.) (fun _ ->
      Mutex.lock m;
      while not !opened do
        Condition.wait c m
      done;
      Mutex.unlock m);
  if not (eventually (fun () -> Scheduler.queued h = 0)) then
    Alcotest.fail "gate task never claimed";
  fun () ->
    Mutex.lock m;
    opened := true;
    Condition.signal c;
    Mutex.unlock m

let test_sched_weighted_fairness () =
  (* One worker, weights 3 : 1.  Stage six tasks per solve while the
     worker is gated, then count who owns the first six post-gate
     execution slots — served/weight ordering must give the heavy
     solve at least four of them regardless of tie-breaking. *)
  with_pool 1 (fun s ->
      let heavy = Scheduler.submit ~weight:3. s in
      let light = Scheduler.submit ~weight:1. s in
      let order = ref [] in
      let olock = Mutex.create () in
      let record tag _slot =
        Mutex.lock olock;
        order := tag :: !order;
        Mutex.unlock olock
      in
      let release = gate_worker heavy in
      for i = 0 to 5 do
        Scheduler.push heavy ~worker:0 (float_of_int i) (record `Heavy);
        Scheduler.push light ~worker:0 (float_of_int i) (record `Light)
      done;
      release ();
      Scheduler.await heavy;
      Scheduler.await light;
      let first6 = List.filteri (fun i _ -> i < 6) (List.rev !order) in
      let nheavy = List.length (List.filter (fun t -> t = `Heavy) first6) in
      Alcotest.(check int) "everything ran" 12 (List.length !order);
      Alcotest.(check bool)
        (Printf.sprintf "weight-3 solve owns most early slots (got %d/6)" nheavy)
        true (nheavy >= 4))

let test_sched_task_exception_propagates () =
  with_pool 2 (fun s ->
      let h = Scheduler.submit s in
      Scheduler.push h ~worker:0 0. (fun _ -> failwith "boom");
      (match Scheduler.await h with
      | () -> Alcotest.fail "await should re-raise the task's exception"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
      (* The pool survives a poisoned solve. *)
      let h2 = Scheduler.submit s in
      let ran = Atomic.make false in
      Scheduler.push h2 ~worker:0 0. (fun _ -> Atomic.set ran true);
      Scheduler.await h2;
      Alcotest.(check bool) "pool still serves other solves" true
        (Atomic.get ran))

let test_sched_stop_discards_queued () =
  with_pool 1 (fun s ->
      let h = Scheduler.submit s in
      let ran = Atomic.make 0 in
      let release = gate_worker h in
      for i = 1 to 5 do
        Scheduler.push h ~worker:0 (float_of_int i) (fun _ ->
            ignore (Atomic.fetch_and_add ran 1))
      done;
      Scheduler.stop h;
      release ();
      Scheduler.await h;
      Alcotest.(check bool) "stopped" true (Scheduler.stopped h);
      Alcotest.(check int) "queued nodes were never run" 0 (Atomic.get ran))

(* ------------------------------------------------------------------ *)
(* Branch & bound through a shared scheduler                           *)
(* ------------------------------------------------------------------ *)

(* Same downsized Table-1 family as test_archex's parallel section. *)
let par_test_params =
  {
    Archex.Scenarios.default_data_collection with
    Archex.Scenarios.dc_sensors = 3;
    dc_relay_grid = (3, 2);
    dc_width = 45.;
    dc_height = 28.;
  }

let base_cfg ~workers =
  Archex.Solver_config.(
    default
    |> with_approx ~kstar:4 ()
    |> with_time_limit 60. |> with_rel_gap 1e-6 |> with_workers workers)

let solve_cfg cfg inst =
  match Archex.Solve.run cfg inst with
  | Ok out -> out
  | Error e -> Alcotest.fail e

let test_bb_sequential_via_scheduler_replay () =
  (* ISSUE acceptance: a sequential (nworkers = 1) search routed
     through a shared scheduler must replay the owned-loop tree
     bit-identically — same pinned node count as
     test_presolve_node_count_regression, same tallies as the plain
     run, not merely the same objective. *)
  match
    Archex.Scenarios.data_collection ~objective:Archex.Objective.energy
      par_test_params
  with
  | Error e -> Alcotest.fail e
  | Ok inst ->
      let plain = (solve_cfg (base_cfg ~workers:1) inst).Archex.Outcome.mip in
      let s = Scheduler.create ~nworkers:2 in
      let via =
        Fun.protect
          ~finally:(fun () -> Scheduler.shutdown s)
          (fun () ->
            let cfg = Archex.Solver_config.with_scheduler s (base_cfg ~workers:1) in
            (solve_cfg cfg inst).Archex.Outcome.mip)
      in
      Alcotest.(check int) "pinned energy node count" 575 via.Branch_bound.nodes;
      Alcotest.(check int) "node parity" plain.Branch_bound.nodes
        via.Branch_bound.nodes;
      Alcotest.(check int) "lp iteration parity" plain.Branch_bound.lp_iterations
        via.Branch_bound.lp_iterations;
      Alcotest.(check (float 1e-9)) "objective parity" plain.Branch_bound.objective
        via.Branch_bound.objective

let test_bb_parallel_via_shared_scheduler () =
  (* workers > 1 through a shared pool must agree with the owned-pool
     parallel search on status and objective. *)
  match
    Archex.Scenarios.data_collection ~objective:Archex.Objective.dollar
      par_test_params
  with
  | Error e -> Alcotest.fail e
  | Ok inst ->
      let owned = solve_cfg (base_cfg ~workers:4) inst in
      let s = Scheduler.create ~nworkers:4 in
      let shared =
        Fun.protect
          ~finally:(fun () -> Scheduler.shutdown s)
          (fun () ->
            let cfg = Archex.Solver_config.with_scheduler s (base_cfg ~workers:4) in
            solve_cfg cfg inst)
      in
      Alcotest.(check string) "status parity"
        (Status.mip_status_to_string owned.Archex.Outcome.status)
        (Status.mip_status_to_string shared.Archex.Outcome.status);
      Alcotest.(check (float 1e-6)) "objective parity"
        owned.Archex.Outcome.mip.Branch_bound.objective
        shared.Archex.Outcome.mip.Branch_bound.objective

let test_bb_concurrent_solves_share_pool () =
  (* Two searches submitted from two threads share one pool and must
     both land on their own sequential optimum — the per-solve
     exhaustion proofs keep the trees independent. *)
  let instance objective =
    match Archex.Scenarios.data_collection ~objective par_test_params with
    | Error e -> Alcotest.fail e
    | Ok inst -> inst
  in
  let dollar = instance Archex.Objective.dollar in
  let mixed =
    instance (Archex.Objective.combine Archex.Objective.dollar Archex.Objective.energy)
  in
  let seq_dollar = solve_cfg (base_cfg ~workers:1) dollar in
  let seq_mixed = solve_cfg (base_cfg ~workers:1) mixed in
  let s = Scheduler.create ~nworkers:2 in
  let r_dollar = ref None and r_mixed = ref None in
  Fun.protect
    ~finally:(fun () -> Scheduler.shutdown s)
    (fun () ->
      let cfg = Archex.Solver_config.with_scheduler s (base_cfg ~workers:2) in
      let t1 = Thread.create (fun () -> r_dollar := Some (solve_cfg cfg dollar)) () in
      let t2 = Thread.create (fun () -> r_mixed := Some (solve_cfg cfg mixed)) () in
      Thread.join t1;
      Thread.join t2);
  match (!r_dollar, !r_mixed) with
  | Some d, Some x ->
      Alcotest.(check (float 1e-6)) "dollar objective"
        seq_dollar.Archex.Outcome.mip.Branch_bound.objective
        d.Archex.Outcome.mip.Branch_bound.objective;
      Alcotest.(check (float 1e-6)) "mixed objective"
        seq_mixed.Archex.Outcome.mip.Branch_bound.objective
        x.Archex.Outcome.mip.Branch_bound.objective
  | _ -> Alcotest.fail "a concurrent solve did not finish"

(* ------------------------------------------------------------------ *)
(* Daemon end to end                                                   *)
(* ------------------------------------------------------------------ *)

let tmp_sock tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "archexd-test-%s-%d.sock" tag (Unix.getpid ()))

let small_overrides =
  {
    Server.Protocol.no_overrides with
    Server.Protocol.o_time_limit = Some 120.;
    o_rel_gap = Some 1e-6;
  }

let oneshot_objective name =
  match Server.Workload.find name with
  | Error e -> Alcotest.fail e
  | Ok w -> (
      match Server.Workload.instance w with
      | Error e -> Alcotest.fail e
      | Ok inst -> (
          let cfg =
            Archex.Solver_config.(
              default
              |> with_approx ~kstar:4 ()
              |> with_time_limit 120. |> with_rel_gap 1e-6)
          in
          match Archex.Solve.run cfg inst with
          | Error e -> Alcotest.fail e
          | Ok out -> out.Archex.Outcome.mip.Branch_bound.objective))

let expect_result name = function
  | Ok (Server.Protocol.Result r) -> r
  | Ok (Server.Protocol.Rejected m) -> Alcotest.fail (name ^ ": rejected: " ^ m)
  | Ok (Server.Protocol.Error_msg m) -> Alcotest.fail (name ^ ": error: " ^ m)
  | Ok _ -> Alcotest.fail (name ^ ": unexpected response frame")
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let test_daemon_end_to_end () =
  let sock = tmp_sock "e2e" in
  let config =
    {
      Server.Daemon.default_config with
      Server.Daemon.c_socket = sock;
      c_workers = 2;
      c_max_active = 2;
      c_max_waiting = 2;
      c_cache_capacity = 4;
      c_time_limit = 120.;
      c_verbose = false;
    }
  in
  match Server.Daemon.create config with
  | Error e -> Alcotest.fail e
  | Ok d ->
      let clean = ref false in
      let dt = Thread.create (fun () -> clean := Server.Daemon.run d) () in
      (match Server.Client.connect sock with
      | Error e -> Alcotest.fail ("connect: " ^ e)
      | Ok conn ->
          Fun.protect
            ~finally:(fun () -> Server.Client.disconnect conn)
            (fun () ->
              (match Server.Client.ping conn with
              | Ok (Server.Protocol.Pong p) ->
                  Alcotest.(check string)
                    "pong version" Server.Daemon.version p.version;
                  Alcotest.(check int)
                    "pong workers" (Server.Daemon.workers d) p.workers
              | Ok _ -> Alcotest.fail "ping: unexpected frame"
              | Error e -> Alcotest.fail ("ping: " ^ e));
              let submit name =
                Server.Client.solve conn
                  (Server.Protocol.Workload { name; kstar = 4 })
                  small_overrides
              in
              let r = expect_result "dc-small-dollar" (submit "dc-small-dollar") in
              Alcotest.(check string) "status" "optimal" r.Server.Protocol.r_status;
              Alcotest.(check bool) "first request is cold" false
                r.Server.Protocol.r_cache_hit;
              Alcotest.(check (float 1e-6))
                "daemon objective matches one-shot Solve.run"
                (oneshot_objective "dc-small-dollar")
                r.Server.Protocol.r_objective;
              let r2 = expect_result "repeat" (submit "dc-small-dollar") in
              Alcotest.(check bool) "repeat hits the warm session" true
                r2.Server.Protocol.r_cache_hit;
              Alcotest.(check (float 1e-6)) "warm objective unchanged"
                r.Server.Protocol.r_objective r2.Server.Protocol.r_objective;
              (match submit "no-such-workload" with
              | Ok (Server.Protocol.Error_msg _) -> ()
              | Ok _ -> Alcotest.fail "unknown workload: expected Error_msg"
              | Error e -> Alcotest.fail ("unknown workload: " ^ e));
              (* Per-request cut overrides: a restricted family list
                 still proves the same optimum; a bogus list is a bad
                 request, not a crash. *)
              let r3 =
                expect_result "cuts override"
                  (Server.Client.solve conn
                     (Server.Protocol.Workload
                        { name = "dc-small-dollar"; kstar = 4 })
                     { small_overrides with Server.Protocol.o_cuts = Some "gmi,cover" })
              in
              Alcotest.(check (float 1e-6)) "restricted-cuts objective unchanged"
                r.Server.Protocol.r_objective r3.Server.Protocol.r_objective;
              (match
                 Server.Client.solve conn
                   (Server.Protocol.Workload
                      { name = "dc-small-dollar"; kstar = 4 })
                   { small_overrides with Server.Protocol.o_cuts = Some "bogus" }
               with
              | Ok (Server.Protocol.Error_msg _) -> ()
              | Ok _ -> Alcotest.fail "bad cut list: expected Error_msg"
              | Error e -> Alcotest.fail ("bad cut list: " ^ e));
              (* A raw LP model takes the cacheless MILP path. *)
              let m = Model.create () in
              let x = Model.add_var m ~lb:0. ~ub:5. ~kind:Model.Integer "x" in
              let y = Model.add_var m ~lb:0. ~ub:5. ~kind:Model.Integer "y" in
              Model.add_constr m (Lin.of_list [ (1., x); (1., y) ]) Model.Ge 3.;
              Model.set_objective m Model.Minimize
                (Lin.of_list [ (1., x); (1., y) ]);
              let lp =
                Server.Client.solve conn
                  (Server.Protocol.Lp (Lp_format.to_string m))
                  small_overrides
              in
              let rl = expect_result "lp payload" lp in
              Alcotest.(check (float 1e-9)) "lp objective" 3.
                rl.Server.Protocol.r_objective;
              Alcotest.(check bool) "lp path bypasses the cache" false
                rl.Server.Protocol.r_cache_hit;
              match Server.Client.shutdown conn with
              | Ok (Server.Protocol.Pong _) -> ()
              | Ok _ -> Alcotest.fail "shutdown: expected a Pong ack"
              | Error e -> Alcotest.fail ("shutdown: " ^ e)));
      Thread.join dt;
      Alcotest.(check bool) "clean drain" true !clean;
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock)

(* A 3 x 30 market-split feasibility model: equality rows with dense
   0..99 coefficients and half-sum right-hand sides give the LP
   relaxation nothing to prune with, so the tree is astronomically
   large — the solve reliably outlives the test and only returns
   because the drain raises its interrupt flag. *)
let market_split_model () =
  let m = Model.create () in
  let seed = ref 123456789 in
  let next () =
    seed := (1103515245 * !seed) + 12345 land 0x3FFFFFFF;
    abs (!seed / 65536) mod 100
  in
  let n = 30 in
  let xs = Array.init n (fun i -> Model.add_binary m (Printf.sprintf "x%d" i)) in
  for _row = 0 to 2 do
    let coefs = Array.init n (fun _ -> float_of_int (next ())) in
    let total = Array.fold_left ( +. ) 0. coefs in
    let rhs = Float.of_int (int_of_float total / 2) in
    Model.add_constr m
      (Lin.of_list (Array.to_list (Array.mapi (fun i c -> (c, xs.(i))) coefs)))
      Model.Eq rhs
  done;
  Model.set_objective m Model.Minimize
    (Lin.of_list (Array.to_list (Array.map (fun v -> (1., v)) xs)));
  m

let test_daemon_busy_and_interrupted_drain () =
  (* One admission slot, no waiting room: while a deliberately
     intractable solve holds the lane, a second request bounces with
     [Rejected]; [request_shutdown] (the SIGINT/SIGTERM path) must
     then interrupt the long solve into an [Interrupted] frame and
     still drain cleanly. *)
  let sock = tmp_sock "drain" in
  let config =
    {
      Server.Daemon.c_socket = sock;
      c_workers = 1;
      c_max_active = 1;
      c_max_waiting = 0;
      c_cache_capacity = 2;
      c_time_limit = 300.;
      c_drain_timeout = 60.;
      c_verbose = false;
    }
  in
  match Server.Daemon.create config with
  | Error e -> Alcotest.fail e
  | Ok d ->
      let clean = ref false in
      let dt = Thread.create (fun () -> clean := Server.Daemon.run d) () in
      let long_result = ref (Error "never ran") in
      let text = Lp_format.to_string (market_split_model ()) in
      let lt =
        Thread.create
          (fun () ->
            match Server.Client.connect sock with
            | Error e -> long_result := Error ("connect: " ^ e)
            | Ok conn ->
                Fun.protect
                  ~finally:(fun () -> Server.Client.disconnect conn)
                  (fun () ->
                    long_result :=
                      Server.Client.solve conn (Server.Protocol.Lp text)
                        Server.Protocol.no_overrides))
          ()
      in
      (match Server.Client.connect sock with
      | Error e -> Alcotest.fail ("second connect: " ^ e)
      | Ok conn ->
          Fun.protect
            ~finally:(fun () -> Server.Client.disconnect conn)
            (fun () ->
              (* Give the long solve time to take the only lane, then
                 overflow the admission gate. *)
              Thread.delay 0.5;
              match
                Server.Client.solve conn
                  (Server.Protocol.Workload { name = "dc-small-dollar"; kstar = 4 })
                  small_overrides
              with
              | Ok (Server.Protocol.Rejected _) -> ()
              | Ok (Server.Protocol.Result _) ->
                  Alcotest.fail
                    "second request was served while the lane should be full"
              | Ok _ -> Alcotest.fail "second request: unexpected frame"
              | Error e -> Alcotest.fail ("second request: " ^ e)));
      Server.Daemon.request_shutdown d;
      Thread.join dt;
      Thread.join lt;
      (match !long_result with
      | Ok (Server.Protocol.Interrupted _) -> ()
      | Ok (Server.Protocol.Result r) ->
          Alcotest.fail
            (Printf.sprintf "intractable solve finished (%s, %d nodes)?"
               r.Server.Protocol.r_status r.Server.Protocol.r_nodes)
      | Ok _ -> Alcotest.fail "long solve: unexpected terminal frame"
      | Error e -> Alcotest.fail ("long solve: " ^ e));
      Alcotest.(check bool) "drain stayed clean" true !clean;
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          qt prop_request_roundtrip;
          qt prop_response_roundtrip;
          qt prop_truncated_rejected;
          Alcotest.test_case "unknown tags rejected" `Quick test_protocol_unknown_tag;
        ] );
      ( "admission",
        [
          Alcotest.test_case "lane limits and close" `Quick test_admission_gate;
          Alcotest.test_case "waiting room blocks then admits" `Quick
            test_admission_waiting_room;
          Alcotest.test_case "close flushes waiters" `Quick
            test_admission_close_flushes_waiters;
        ] );
      ( "session_cache",
        [
          Alcotest.test_case "lru eviction order" `Quick test_cache_lru_eviction;
          Alcotest.test_case "capacity 0 bypasses" `Quick
            test_cache_capacity_zero_bypasses;
          Alcotest.test_case "exclusive checkout" `Quick test_cache_exclusive_checkout;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "push/await/drained" `Quick test_sched_basic;
          Alcotest.test_case "two solves stay isolated" `Quick
            test_sched_two_solves_isolated;
          Alcotest.test_case "weighted fair victim selection" `Quick
            test_sched_weighted_fairness;
          Alcotest.test_case "task exception re-raised at await" `Quick
            test_sched_task_exception_propagates;
          Alcotest.test_case "stop discards queued nodes" `Quick
            test_sched_stop_discards_queued;
        ] );
      ( "bb_scheduler",
        [
          Alcotest.test_case "sequential replay is bit-identical" `Slow
            test_bb_sequential_via_scheduler_replay;
          Alcotest.test_case "parallel parity through shared pool" `Slow
            test_bb_parallel_via_shared_scheduler;
          Alcotest.test_case "concurrent solves share the pool" `Slow
            test_bb_concurrent_solves_share_pool;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "end to end over a socket" `Slow test_daemon_end_to_end;
          Alcotest.test_case "busy backpressure and interrupted drain" `Slow
            test_daemon_busy_and_interrupted_drain;
        ] );
    ]
